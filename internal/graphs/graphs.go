// Package graphs provides the graph substrate for the CRONO workloads: a
// compressed-sparse-row representation, deterministic synthetic generators
// spanning the structural variety of the paper's SNAP inputs (uniform,
// power-law/RMAT, grid, ring), and a named input catalogue standing in for
// the real-world SNAP datasets.
//
// The property of an input that the paper shows drives prefetch behaviour is
// its memory-level shape: the size of the indirectly accessed arrays
// relative to the LLC, and the per-iteration work (average degree, locality
// of the index stream). Those are exactly the generator knobs.
package graphs

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a directed graph in CSR form with optional edge weights.
type Graph struct {
	// N is the vertex count.
	N int
	// Offsets has length N+1; vertex v's out-edges are
	// Edges[Offsets[v]:Offsets[v+1]].
	Offsets []uint64
	// Edges holds destination vertex ids.
	Edges []uint64
	// Weights holds per-edge weights (same length as Edges); nil when
	// unweighted.
	Weights []uint64
	// SrcOf holds the source vertex of each edge (the transpose index
	// used by flat edge-loop kernels); same length as Edges.
	SrcOf []uint64
}

// M returns the edge count.
func (g *Graph) M() int { return len(g.Edges) }

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.M()) / float64(g.N)
}

// Validate checks CSR invariants.
func (g *Graph) Validate() error {
	if len(g.Offsets) != g.N+1 {
		return fmt.Errorf("graphs: offsets length %d, want %d", len(g.Offsets), g.N+1)
	}
	if g.Offsets[0] != 0 || g.Offsets[g.N] != uint64(len(g.Edges)) {
		return fmt.Errorf("graphs: offsets endpoints [%d,%d], want [0,%d]", g.Offsets[0], g.Offsets[g.N], len(g.Edges))
	}
	for v := 0; v < g.N; v++ {
		if g.Offsets[v] > g.Offsets[v+1] {
			return fmt.Errorf("graphs: offsets not monotone at %d", v)
		}
	}
	for i, e := range g.Edges {
		if e >= uint64(g.N) {
			return fmt.Errorf("graphs: edge %d targets %d >= n=%d", i, e, g.N)
		}
	}
	if g.Weights != nil && len(g.Weights) != len(g.Edges) {
		return fmt.Errorf("graphs: weights length %d, want %d", len(g.Weights), len(g.Edges))
	}
	if len(g.SrcOf) != len(g.Edges) {
		return fmt.Errorf("graphs: srcof length %d, want %d", len(g.SrcOf), len(g.Edges))
	}
	for i, s := range g.SrcOf {
		if s >= uint64(g.N) {
			return fmt.Errorf("graphs: srcof %d is %d >= n=%d", i, s, g.N)
		}
	}
	return nil
}

// fromAdj builds CSR (with SrcOf) from per-vertex adjacency lists.
func fromAdj(adj [][]uint64, weighted bool, rng *rand.Rand) *Graph {
	n := len(adj)
	g := &Graph{N: n, Offsets: make([]uint64, n+1)}
	m := 0
	for _, l := range adj {
		m += len(l)
	}
	g.Edges = make([]uint64, 0, m)
	g.SrcOf = make([]uint64, 0, m)
	if weighted {
		g.Weights = make([]uint64, 0, m)
	}
	for v, l := range adj {
		g.Offsets[v] = uint64(len(g.Edges))
		for _, e := range l {
			g.Edges = append(g.Edges, e)
			g.SrcOf = append(g.SrcOf, uint64(v))
			if weighted {
				g.Weights = append(g.Weights, uint64(1+rng.Intn(255)))
			}
		}
	}
	g.Offsets[n] = uint64(len(g.Edges))
	return g
}

// Uniform generates an Erdős–Rényi-style graph: each vertex gets close to
// avgDeg out-edges to uniformly random destinations.
func Uniform(n, avgDeg int, weighted bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint64, n)
	for v := range adj {
		deg := avgDeg/2 + rng.Intn(avgDeg+1)
		l := make([]uint64, deg)
		for i := range l {
			l[i] = uint64(rng.Intn(n))
		}
		adj[v] = l
	}
	return fromAdj(adj, weighted, rng)
}

// PowerLaw generates a graph with a skewed (Zipf-like) degree distribution,
// standing in for social-network SNAP inputs. skew in (0,1]: higher is more
// skewed.
func PowerLaw(n, avgDeg int, skew float64, weighted bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.0+skew, 1.0, uint64(4*avgDeg))
	adj := make([][]uint64, n)
	for v := range adj {
		deg := int(zipf.Uint64()) + 1
		l := make([]uint64, deg)
		for i := range l {
			// Preferential-attachment flavour: skew destinations
			// toward low ids.
			if rng.Intn(3) == 0 {
				l[i] = uint64(rng.Intn(1 + n/16))
			} else {
				l[i] = uint64(rng.Intn(n))
			}
		}
		adj[v] = l
	}
	return fromAdj(adj, weighted, rng)
}

// Grid generates a w×h 4-neighbour mesh, standing in for road networks:
// low, regular degree and high diameter.
func Grid(w, h int, weighted bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	adj := make([][]uint64, n)
	id := func(x, y int) uint64 { return uint64(y*w + x) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var l []uint64
			if x > 0 {
				l = append(l, id(x-1, y))
			}
			if x < w-1 {
				l = append(l, id(x+1, y))
			}
			if y > 0 {
				l = append(l, id(x, y-1))
			}
			if y < h-1 {
				l = append(l, id(x, y+1))
			}
			adj[id(x, y)] = l
		}
	}
	return fromAdj(adj, weighted, rng)
}

// Ring generates a ring of n vertices where each vertex links to its k
// successors, plus a few random chords; its index stream is almost
// sequential, so hardware prefetching covers it well (a prefetch-hostile
// case for software prefetching).
func Ring(n, k int, chords int, weighted bool, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint64, n)
	for v := range adj {
		l := make([]uint64, 0, k+1)
		for i := 1; i <= k; i++ {
			l = append(l, uint64((v+i)%n))
		}
		adj[v] = l
	}
	for c := 0; c < chords; c++ {
		v := rng.Intn(n)
		adj[v] = append(adj[v], uint64(rng.Intn(n)))
	}
	return fromAdj(adj, weighted, rng)
}

// Kind labels the generator used for a catalogue input.
type Kind uint8

// Generator kinds.
const (
	KindUniform Kind = iota
	KindPowerLaw
	KindGrid
	KindRing
)

func (k Kind) String() string {
	switch k {
	case KindUniform:
		return "uniform"
	case KindPowerLaw:
		return "powerlaw"
	case KindGrid:
		return "grid"
	case KindRing:
		return "ring"
	}
	return "unknown"
}

// Input is a named catalogue entry: a recipe for a deterministic graph.
type Input struct {
	// Name identifies the input, echoing the flavour of SNAP dataset it
	// stands in for.
	Name string
	// Kind selects the generator.
	Kind Kind
	// N is the vertex count (for Grid, N = W*H).
	N int
	// Deg is the average degree parameter (K for Ring).
	Deg int
	// Skew is the power-law skew (PowerLaw only).
	Skew float64
	// Seed makes generation deterministic.
	Seed int64
	// Synthetic marks inputs drawn from the APT-GET synthetic set rather
	// than the SNAP-like set (bc only runs on these, §4.2).
	Synthetic bool
}

// Build generates the input's graph.
func (in Input) Build(weighted bool) *Graph {
	switch in.Kind {
	case KindUniform:
		return Uniform(in.N, in.Deg, weighted, in.Seed)
	case KindPowerLaw:
		return PowerLaw(in.N, in.Deg, in.Skew, weighted, in.Seed)
	case KindGrid:
		w := intSqrt(in.N)
		return Grid(w, in.N/w, weighted, in.Seed)
	case KindRing:
		return Ring(in.N, in.Deg, in.N/64, weighted, in.Seed)
	}
	panic("graphs: unknown kind")
}

func intSqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// Catalogue returns the named graph inputs used by the CRONO experiments.
// The paper evaluates 71 SNAP inputs; we stand in a structurally diverse set
// of 24 (documented as a substitution in DESIGN.md): sizes span inputs whose
// indirect working sets fit in the LLC (prefetch-hostile) through several
// times the LLC (prefetch-friendly), degrees span 2..32, and all four
// structural families are represented.
func Catalogue() []Input {
	ins := []Input{
		// Power-law social-network stand-ins.
		{Name: "soc-alpha", Kind: KindPowerLaw, N: 196608, Deg: 8, Skew: 0.6, Seed: 11},
		{Name: "soc-beta", Kind: KindPowerLaw, N: 262144, Deg: 6, Skew: 0.9, Seed: 12},
		{Name: "soc-gamma", Kind: KindPowerLaw, N: 131072, Deg: 12, Skew: 0.4, Seed: 13},
		{Name: "soc-delta", Kind: KindPowerLaw, N: 98304, Deg: 16, Skew: 0.7, Seed: 14},
		{Name: "wiki-talk-like", Kind: KindPowerLaw, N: 327680, Deg: 4, Skew: 1.0, Seed: 15},
		{Name: "cit-patents-like", Kind: KindPowerLaw, N: 229376, Deg: 10, Skew: 0.5, Seed: 16},
		// Uniform random stand-ins (AS-level topologies, email graphs).
		{Name: "as-skitter-like", Kind: KindUniform, N: 196608, Deg: 10, Seed: 21},
		{Name: "email-euall-like", Kind: KindUniform, N: 131072, Deg: 6, Seed: 22},
		{Name: "gowalla-like", Kind: KindUniform, N: 98304, Deg: 24, Seed: 23},
		{Name: "brightkite-like", Kind: KindUniform, N: 65536, Deg: 4, Seed: 24},
		{Name: "amazon-like", Kind: KindUniform, N: 262144, Deg: 5, Seed: 25},
		{Name: "ro-edges-like", Kind: KindUniform, N: 393216, Deg: 3, Seed: 26},
		// Road-network / mesh stand-ins.
		{Name: "roadnet-pa-like", Kind: KindGrid, N: 262144, Deg: 4, Seed: 31},
		{Name: "roadnet-tx-like", Kind: KindGrid, N: 147456, Deg: 4, Seed: 32},
		{Name: "roadnet-ca-like", Kind: KindGrid, N: 331776, Deg: 4, Seed: 33},
		// Sequential-friendly rings (hardware prefetcher territory).
		{Name: "ring-small", Kind: KindRing, N: 49152, Deg: 8, Seed: 41},
		{Name: "ring-large", Kind: KindRing, N: 262144, Deg: 6, Seed: 42},
		// LLC-resident inputs where prefetching mostly adds overhead.
		{Name: "p2p-gnutella-like", Kind: KindUniform, N: 16384, Deg: 8, Seed: 51},
		{Name: "ca-hepph-like", Kind: KindPowerLaw, N: 12288, Deg: 16, Skew: 0.5, Seed: 52},
		{Name: "as20000102-like", Kind: KindUniform, N: 8192, Deg: 4, Seed: 53},
		{Name: "oregon-like", Kind: KindUniform, N: 24576, Deg: 6, Seed: 54},
		{Name: "bitcoinalpha-like", Kind: KindPowerLaw, N: 20480, Deg: 10, Skew: 0.8, Seed: 55},
		// Borderline working sets (microarchitecture-dependent behaviour:
		// they fit Cascade Lake's LLC but not Haswell's).
		{Name: "border-a", Kind: KindUniform, N: 24576, Deg: 8, Seed: 61},
		{Name: "border-b", Kind: KindPowerLaw, N: 28672, Deg: 8, Skew: 0.6, Seed: 62},
	}
	sort.Slice(ins, func(i, j int) bool { return ins[i].Name < ins[j].Name })
	return ins
}

// SyntheticCatalogue returns the APT-GET-style synthetic inputs, the only
// ones bc runs on (§4.2).
func SyntheticCatalogue() []Input {
	return []Input{
		{Name: "synth-u1", Kind: KindUniform, N: 131072, Deg: 8, Seed: 71, Synthetic: true},
		{Name: "synth-u2", Kind: KindUniform, N: 196608, Deg: 12, Seed: 72, Synthetic: true},
		{Name: "synth-p1", Kind: KindPowerLaw, N: 163840, Deg: 8, Skew: 0.6, Seed: 73, Synthetic: true},
		{Name: "synth-p2", Kind: KindPowerLaw, N: 98304, Deg: 16, Skew: 0.8, Seed: 74, Synthetic: true},
		{Name: "synth-g1", Kind: KindGrid, N: 147456, Deg: 4, Seed: 75, Synthetic: true},
		{Name: "synth-small", Kind: KindUniform, N: 12288, Deg: 8, Seed: 76, Synthetic: true},
	}
}

// FindInput looks up a catalogue input by name across both catalogues.
func FindInput(name string) (Input, bool) {
	for _, in := range Catalogue() {
		if in.Name == name {
			return in, true
		}
	}
	for _, in := range SyntheticCatalogue() {
		if in.Name == name {
			return in, true
		}
	}
	return Input{}, false
}
