package graphs

import (
	"testing"
	"testing/quick"
)

func TestGeneratorsProduceValidCSR(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"uniform", Uniform(500, 6, false, 1)},
		{"uniform-weighted", Uniform(300, 4, true, 2)},
		{"powerlaw", PowerLaw(500, 8, 0.7, false, 3)},
		{"grid", Grid(20, 25, false, 4)},
		{"ring", Ring(400, 3, 10, true, 5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if tc.g.M() == 0 {
				t.Fatal("no edges generated")
			}
			if tc.g.AvgDegree() <= 0 {
				t.Fatal("zero average degree")
			}
		})
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	a := PowerLaw(200, 6, 0.5, true, 42)
	b := PowerLaw(200, 6, 0.5, true, 42)
	if a.M() != b.M() {
		t.Fatal("same seed produced different edge counts")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] || a.Weights[i] != b.Weights[i] {
			t.Fatal("same seed produced different graphs")
		}
	}
	c := PowerLaw(200, 6, 0.5, true, 43)
	same := c.M() == a.M()
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestSrcOfMatchesOffsets(t *testing.T) {
	g := Uniform(300, 5, false, 9)
	for v := 0; v < g.N; v++ {
		for e := g.Offsets[v]; e < g.Offsets[v+1]; e++ {
			if g.SrcOf[e] != uint64(v) {
				t.Fatalf("SrcOf[%d] = %d, want %d", e, g.SrcOf[e], v)
			}
		}
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(4, 4, false, 1)
	if g.N != 16 {
		t.Fatalf("N = %d", g.N)
	}
	// Corner vertex 0 has exactly 2 neighbours; interior vertex 5 has 4.
	if d := g.Offsets[1] - g.Offsets[0]; d != 2 {
		t.Fatalf("corner degree = %d", d)
	}
	if d := g.Offsets[6] - g.Offsets[5]; d != 4 {
		t.Fatalf("interior degree = %d", d)
	}
}

func TestRingIsNearSequential(t *testing.T) {
	g := Ring(100, 2, 0, false, 1)
	// Every vertex links to its immediate successors.
	for v := 0; v < g.N; v++ {
		if g.Edges[g.Offsets[v]] != uint64((v+1)%g.N) {
			t.Fatalf("vertex %d first edge = %d", v, g.Edges[g.Offsets[v]])
		}
	}
}

func TestCatalogueEntriesResolveAndBuild(t *testing.T) {
	cat := Catalogue()
	if len(cat) < 20 {
		t.Fatalf("catalogue has %d inputs; the reproduction documents ~24", len(cat))
	}
	seen := map[string]bool{}
	for _, in := range cat {
		if seen[in.Name] {
			t.Fatalf("duplicate input name %q", in.Name)
		}
		seen[in.Name] = true
		got, ok := FindInput(in.Name)
		if !ok || got.Name != in.Name {
			t.Fatalf("FindInput(%q) failed", in.Name)
		}
	}
	for _, in := range SyntheticCatalogue() {
		if !in.Synthetic {
			t.Fatalf("synthetic input %q not flagged", in.Name)
		}
		if _, ok := FindInput(in.Name); !ok {
			t.Fatalf("FindInput(%q) failed", in.Name)
		}
	}
	if _, ok := FindInput("definitely-not-real"); ok {
		t.Fatal("FindInput should reject unknown names")
	}
}

// TestCatalogueSizesSpanTheLLC checks the property the evaluation depends
// on: the catalogue must include inputs well below and well above the
// simulated LLC capacities (32768 words on Cascade Lake, 16384 on Haswell).
func TestCatalogueSizesSpanTheLLC(t *testing.T) {
	small, border, large := 0, 0, 0
	for _, in := range Catalogue() {
		switch {
		case in.N <= 16384:
			small++
		case in.N <= 32768:
			border++
		default:
			large++
		}
	}
	if small == 0 || border == 0 || large == 0 {
		t.Fatalf("catalogue lacks size diversity: %d small, %d border, %d large", small, border, large)
	}
}

func TestBuildSmallInputs(t *testing.T) {
	// Build the smaller catalogue entries end to end (the big ones are
	// exercised by the workload tests).
	for _, in := range Catalogue() {
		if in.N > 32768 {
			continue
		}
		g := in.Build(true)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if g.N != in.N {
			t.Fatalf("%s: N = %d, want %d", in.Name, g.N, in.N)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := Uniform(50, 4, true, 1)
	bad := *g
	bad.Edges = append([]uint64(nil), g.Edges...)
	bad.Edges[0] = uint64(g.N + 5)
	if bad.Validate() == nil {
		t.Fatal("out-of-range edge not caught")
	}
	bad2 := *g
	bad2.Offsets = append([]uint64(nil), g.Offsets...)
	bad2.Offsets[1] = bad2.Offsets[2] + 1
	if bad2.Validate() == nil {
		t.Fatal("non-monotone offsets not caught")
	}
	bad3 := *g
	bad3.Weights = bad3.Weights[:1]
	if bad3.Validate() == nil {
		t.Fatal("weight length mismatch not caught")
	}
}

// Property: every generator keeps edge targets within [0, N).
func TestEdgeRangeProperty(t *testing.T) {
	f := func(seed int64, rawN, rawDeg uint8) bool {
		n := 50 + int(rawN)
		deg := 1 + int(rawDeg)%8
		g := Uniform(n, deg, false, seed)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindUniform, KindPowerLaw, KindGrid, KindRing} {
		if k.String() == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}
