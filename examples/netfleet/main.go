// Example netfleet runs the daemon and the client in one process: it
// starts a fleetd server on a loopback listener, streams its journal on
// one goroutine, submits a two-tenant batch through the HTTP client —
// with tenant "alice" capped tightly enough to see 429 backpressure —
// and prints every terminal outcome. The same client calls work
// unchanged against a remote rpg2-fleetd.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"rpg2"
)

func main() {
	// A daemon with one worker and a two-deep per-tenant queue: small
	// enough that a burst from one tenant trips backpressure while the
	// other tenant's sessions sail through.
	srv, err := rpg2.NewFleetDaemon(rpg2.FleetDaemonConfig{
		Fleet: rpg2.FleetConfig{
			Machine:        rpg2.CascadeLake(),
			Workers:        1,
			MaxTenantQueue: 2,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cli := rpg2.NewFleetClient(rpg2.FleetClientConfig{BaseURL: ts.URL})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Follow the journal concurrently; the stream ends cleanly when the
	// daemon drains.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		cli.Stream(ctx, -1, func(e rpg2.FleetEvent) error {
			if e.Tenant != "" {
				fmt.Printf("  event seq=%d %-16s session=%d tenant=%s\n", e.Seq, e.Type, e.Session, e.Tenant)
			}
			return nil
		})
	}()

	// Alice bursts six submissions at a queue that holds two; bob's
	// trickle is untouched by her saturation.
	var ids []int
	rejected := 0
	for i := 0; i < 6; i++ {
		id, err := cli.Submit(ctx, rpg2.SessionRecord{Bench: "is", Tenant: "alice", Seed: int64(i + 1)})
		var over *rpg2.FleetClientOverloaded
		switch {
		case err == nil:
			ids = append(ids, id)
		case errors.As(err, &over):
			rejected++
			fmt.Printf("alice rejected: retry after %s\n", over.RetryAfter)
		default:
			log.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		id, err := cli.Submit(ctx, rpg2.SessionRecord{Bench: "cg", Tenant: "bob", Seed: int64(i + 1)})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("accepted %d sessions, %d alice submissions hit backpressure\n\n", len(ids), rejected)

	for _, id := range ids {
		out, err := cli.Wait(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d: %s", id, out.State)
		if out.Report != nil {
			fmt.Printf("  distance=%d  sites=%d", out.Report.FinalDistance, len(out.Report.Sites))
		}
		fmt.Println()
	}

	// Graceful drain: queued sessions cancel, streams end, and later
	// submissions would get 503.
	srv.Drain()
	if status, err := cli.Health(ctx); err == nil {
		fmt.Printf("\ndaemon health after drain: %s\n", status)
	}
	cancel()
	wg.Wait()
}
