// Example recovery walks the fleet's crash-safety story end to end:
//
//  1. A persisted fleet runs a batch of sessions, journaling every event
//     to a checksummed WAL and committing tuned profiles to the store.
//  2. We simulate a crash: the journal is rewound to mid-run (as if the
//     process died there), the snapshot is deleted, and garbage is
//     appended to the journal's tail (a torn final write).
//  3. RecoverFleet salvages the damaged files, restores the committed
//     profiles, and re-admits every session the "crash" interrupted; the
//     resumed sessions finish and warm-start from the recovered store.
//  4. Finally, a fleet pointed at a hopeless state dir shows graceful
//     degradation: persistence reports "degraded", sessions still finish.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rpg2"
	"rpg2/internal/wal"
)

func main() {
	dir, err := os.MkdirTemp("", "rpg2-recovery")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	m := rpg2.CascadeLake()

	// --- 1. A persisted run. FsyncAlways so every event is durable the
	// moment it is journaled, like a production deployment would choose.
	f := rpg2.NewFleet(rpg2.FleetConfig{
		Machine: m, Workers: 2,
		StateDir: dir, Fsync: rpg2.FsyncAlways,
	})
	var specs []rpg2.SessionSpec
	for i := 0; i < 8; i++ {
		bench := []string{"is", "cg", "randacc", "bfs"}[i%4]
		spec := rpg2.SessionSpec{Bench: bench, Seed: int64(i + 1)}
		if bench == "bfs" {
			spec.Input = "soc-gamma"
		}
		specs = append(specs, spec)
	}
	if _, err := f.Run(specs); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("ran %d sessions into %s\n", len(specs), dir)

	// --- 2. Manufacture a crash. Rewind the journal to just after the
	// first session finished (everything later "never happened"), delete
	// the snapshot (forcing pure journal replay), and tear the tail.
	journal := filepath.Join(dir, "journal.wal")
	recs, _, err := wal.ReadAll(journal)
	if err != nil {
		log.Fatal(err)
	}
	cut := len(recs)
	done := 0
	for i, rec := range recs {
		if !bytes.Contains(rec, []byte(`"session-done"`)) && !bytes.Contains(rec, []byte(`"session-failed"`)) {
			continue
		}
		done++
		if done == 2 { // keep two finished sessions, interrupt the rest
			cut = i + 1
			break
		}
	}
	if err := wal.WriteAtomic(journal, recs[:cut]); err != nil {
		log.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "snapshot.wal")); err != nil {
		log.Fatal(err)
	}
	jf, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		log.Fatal(err)
	}
	jf.WriteString("fffffff0 9 torn-writ") // a torn final record
	jf.Close()
	fmt.Printf("simulated crash: journal rewound to %d of %d records, snapshot deleted, tail torn\n",
		cut, len(recs))

	// --- 3. Recover. Salvage keeps the valid prefix, the committed store
	// entries are rebuilt from the journal, and interrupted sessions are
	// re-admitted; draining finishes them.
	f2, rec, err := rpg2.RecoverFleet(dir, rpg2.FleetConfig{Machine: m, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rec.Summary())
	f2.Drain()
	warm := 0
	for _, s := range rec.Requeued {
		if !s.State().Terminal() {
			log.Fatalf("recovered session %d never finished: %v", s.ID, s.State())
		}
		if s.Warm() {
			warm++
		}
	}
	snap := f2.Snapshot()
	fmt.Printf("resumed: %d sessions finished (%d warm-started from recovered profiles), %d store entries live\n",
		len(rec.Requeued), warm, snap.StoreEntries)
	f2.Close()

	// --- 4. Graceful degradation: an unusable state dir (a path through a
	// regular file) cannot hold a WAL. The fleet still runs — in-memory —
	// and the snapshot says so instead of hiding it.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		log.Fatal(err)
	}
	f3 := rpg2.NewFleet(rpg2.FleetConfig{
		Machine: m, Workers: 1,
		StateDir: filepath.Join(blocker, "impossible"),
	})
	if _, err := f3.Run([]rpg2.SessionSpec{{Bench: "is", Seed: 99}}); err != nil {
		log.Fatal(err)
	}
	dsnap := f3.Snapshot()
	fmt.Printf("degraded fleet: persistence=%s (%s), %d completed anyway\n",
		dsnap.Persistence, dsnap.PersistenceError, dsnap.Completed)
	f3.Close()
}
