// Example resilience exercises the fleet's admission-control layer under a
// deterministic 25% fault injection rate: the retry lane re-admits failed
// sessions with exponential backoff on a virtual clock, per-pair quotas
// keep one workload from monopolising the pool, and a circuit breaker
// parks sessions on a pair that keeps rolling back.
package main

import (
	"fmt"
	"log"

	"rpg2"
)

func main() {
	m := rpg2.CascadeLake()
	f := rpg2.NewFleet(rpg2.FleetConfig{
		Machine: m,
		Workers: 4,
		// A quarter of controller stages fail, decided purely by hash of
		// (injector seed, session seed, attempt, stage) — rerun this
		// program and the same sessions fail at the same places.
		Faults: rpg2.NewFaultInjector(rpg2.FaultConfig{Seed: 42, Rate: 0.25}),
		// Failed and rolled-back sessions retry up to twice, waiting
		// 0.5 s then 1 s of virtual time; retries run cold with a fresh
		// derived seed.
		MaxRetries: 2,
		// At most two in-flight sessions per (benchmark, input) pair.
		Quota: 2,
		// Four consecutive rollbacks on one pair open its breaker.
		BreakerThreshold: 4,
	})
	defer f.Close()

	var specs []rpg2.SessionSpec
	benches := []string{"is", "cg", "randacc"}
	for i := 0; i < 24; i++ {
		specs = append(specs, rpg2.SessionSpec{
			Bench: benches[i%len(benches)],
			Seed:  int64(i + 1),
			// Every fourth session is urgent; aging keeps the rest moving.
			Priority: 3 * (i % 4 / 3),
		})
	}
	sessions, err := f.Run(specs)
	if err != nil {
		log.Fatal(err)
	}

	recovered := 0
	for _, s := range sessions {
		switch {
		case s.State() == rpg2.SessionFailed:
			kind := "organic"
			if rpg2.IsInjectedFault(s.Err()) {
				kind = "injected"
			}
			fmt.Printf("session %2d %-8s failed after %d retries (%s): %v\n",
				s.ID, s.Spec.Bench, s.Attempt(), kind, s.Err())
		case s.Attempt() > 0:
			recovered++
			fmt.Printf("session %2d %-8s recovered on attempt %d: %v\n",
				s.ID, s.Spec.Bench, s.Attempt(), s.Report().Outcome)
		}
	}
	fmt.Printf("\n%d sessions recovered by the retry lane\n\n", recovered)
	fmt.Print(f.Snapshot().Render())
}
