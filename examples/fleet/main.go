// Example fleet shows the profile store amortising RPG²'s work across
// sessions: the first session on a workload profiles and searches cold,
// commits what it learned, and every later session on the same (benchmark,
// input, machine) is warm-started from the cached candidate sites and tuned
// distance — converging in measurably fewer distance probes.
package main

import (
	"fmt"
	"log"

	"rpg2"
)

func main() {
	m := rpg2.CascadeLake()
	f := rpg2.NewFleet(rpg2.FleetConfig{Machine: m, Workers: 2})
	defer f.Close()

	// One cold session first, alone, so its profile is committed before
	// the rest of the fleet arrives.
	cold, err := f.Submit(rpg2.SessionSpec{Bench: "cg", Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	f.Drain()

	// Five more sessions on the same workload: all warm.
	var specs []rpg2.SessionSpec
	for i := 0; i < 5; i++ {
		specs = append(specs, rpg2.SessionSpec{Bench: "cg", Seed: int64(10 + i)})
	}
	warm, err := f.Run(specs)
	if err != nil {
		log.Fatal(err)
	}

	show := func(s *rpg2.FleetSession) {
		rep := s.Report()
		temp := "cold"
		if s.Warm() {
			temp = "warm"
		}
		fmt.Printf("session %d  %-4s  %-12v  %d probes  distance %d\n",
			s.ID, temp, rep.Outcome, rep.Costs.PDEdits, rep.FinalDistance)
	}
	show(cold)
	for _, s := range warm {
		show(s)
	}

	fmt.Println()
	fmt.Print(f.Snapshot().Render())
}
