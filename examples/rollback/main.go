// Rollback: the robustness half of RPG²'s story. On an input whose working
// set fits in the last-level cache, prefetch kernels are pure overhead; a
// static prefetching compiler would ship the slowdown, but RPG² detects the
// regression online and steers execution back to the original code.
package main

import (
	"fmt"
	"log"

	"rpg2"
)

func main() {
	m := rpg2.CascadeLake()

	// as20000102-like is a small AS-topology stand-in: its rank array is
	// LLC-resident, so there is little for prefetching to hide.
	const input = "as20000102-like"

	// Reference: a no-prefetch run of the same duration.
	const seconds = 40.0
	base, err := throughput(m, input, seconds, nil)
	if err != nil {
		log.Fatal(err)
	}

	// RPG² run. MinSamples is lowered so the system activates even on
	// this low-miss input and must rely on rollback rather than on
	// failing activation.
	var report *rpg2.Report
	tuned, err := throughput(m, input, seconds, func(p *rpg2.Process) error {
		r, err := rpg2.Optimize(m, p, rpg2.Config{Seed: 3, MinSamples: 10})
		report = r
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input %s: outcome=%v\n", input, report.Outcome)
	fmt.Printf("  no-prefetch throughput: %.0f items/s\n", base)
	fmt.Printf("  with RPG²:              %.0f items/s (%.1f%% of baseline)\n",
		tuned, 100*tuned/base)
	switch report.Outcome {
	case rpg2.RolledBack:
		fmt.Println("  RPG² injected prefetching, saw no distance beat the baseline,")
		fmt.Println("  and rolled back — the original performance is preserved.")
		fmt.Printf("  rollback stop-the-world cost: %.2f ms\n", 1000*report.Costs.RollbackSeconds)
	case rpg2.NotActivated:
		fmt.Println("  RPG² saw too few LLC misses to bother optimizing — also safe.")
	case rpg2.Tuned:
		fmt.Printf("  RPG² kept distance %d (it found a real win).\n", report.FinalDistance)
	}
}

// throughput runs pr on the input for the duration and returns work items
// per simulated second; optimize, when non-nil, runs mid-flight.
func throughput(m rpg2.Machine, input string, seconds float64, optimize func(*rpg2.Process) error) (float64, error) {
	w, err := rpg2.BuildWorkload("pr", input)
	if err != nil {
		return 0, err
	}
	p, err := rpg2.Launch(m, w)
	if err != nil {
		return 0, err
	}
	counter := rpg2.WatchWork(p, w)
	if optimize != nil {
		if err := optimize(p); err != nil {
			return 0, err
		}
	}
	if budget := m.Seconds(seconds); p.Clock() < budget {
		p.Run(budget - p.Clock())
	}
	return float64(counter.Count) / seconds, nil
}
