// Example chaos walks the fleet's chaos layer and self-healing
// persistence arc end to end:
//
//  1. A persisted fleet runs under deterministic disk fault injection —
//     the injector fails exactly one fsync (SyncRate 1, MaxFaults 1), so
//     the WAL degrades at a hash-scripted moment.
//  2. The degraded persister re-arms on its own: after RearmBackoff
//     journal events of quiet it reopens the WAL epoch, re-snapshots the
//     fleet, and resumes journaling. No operator action, nothing lost
//     from the in-memory fleet.
//  3. The whole arc is observable: persist-degraded / persist-rearm /
//     persist-rearmed journal events, and the snapshot's health lines.
//
// Controller faults (rpg2.NewFaultInjector) ride along so the retry lane
// is exercising admission at the same time the disk is misbehaving —
// chaos layers compose. Rerun this program: the same faults fire at the
// same ordinals, byte for byte.
package main

import (
	"fmt"
	"log"
	"os"

	"rpg2"
)

func main() {
	dir, err := os.MkdirTemp("", "rpg2-chaos")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	m := rpg2.CascadeLake()

	disk := rpg2.NewDiskFaultInjector(rpg2.DiskFaultConfig{
		// Fail exactly one fsync, decided by hash of (seed, file key,
		// op, ordinal) — not a RNG, so reruns degrade at the same event.
		Seed: 7, SyncRate: 1, MaxFaults: 1,
	})
	f := rpg2.NewFleet(rpg2.FleetConfig{
		Machine: m,
		Workers: 2,
		// FsyncAlways makes every journal append hit the failing fsync
		// path, so the scripted fault fires on the first event.
		StateDir: dir, Fsync: rpg2.FsyncAlways,
		DiskFaults: disk,
		// Re-arm after 8 journal events of degraded quiet (virtual time:
		// events, not wall clock — deterministic under any scheduler).
		RearmBackoff: 8,
		// A dash of controller chaos on top: 15% of stages fail and the
		// retry lane re-admits them while persistence is healing.
		Faults:     rpg2.NewFaultInjector(rpg2.FaultConfig{Seed: 42, Rate: 0.15}),
		MaxRetries: 2,
	})
	defer f.Close()

	var specs []rpg2.SessionSpec
	benches := []string{"is", "cg", "randacc"}
	for i := 0; i < 18; i++ {
		specs = append(specs, rpg2.SessionSpec{
			Bench: benches[i%len(benches)],
			Seed:  int64(i + 1),
		})
	}
	if _, err := f.Run(specs); err != nil {
		log.Fatal(err)
	}

	// --- The self-healing arc, straight from the journal.
	fmt.Println("persistence arc:")
	for _, e := range f.Journal().Events() {
		switch e.Type {
		case "persist-degraded":
			fmt.Printf("  seq %3d  degraded: %s\n", e.Seq, e.Err)
		case "persist-rearm":
			fmt.Printf("  seq %3d  re-arm attempt %d (backoff elapsed)\n",
				e.Seq, e.Attempt)
		case "persist-rearmed":
			fmt.Printf("  seq %3d  re-armed: journaling + snapshots resumed\n",
				e.Seq)
		}
	}

	snap := f.Snapshot()
	fmt.Printf("\ninjected disk faults: %d (%v)\n", disk.Injected(), disk.ByOp())
	fmt.Printf("degradations: %d, re-arms: %d, persistence now %q\n\n",
		snap.PersistDegradations, snap.PersistRearms, snap.Persistence)
	fmt.Print(snap.Render())
}
