// Example drift arms the phase-drift watchdog on bc-drift, a graph
// workload that mutates mid-run: phase A walks rows that fit one cache
// line (a small prefetch distance wins), then the graph rebuilds into
// one-word rows whose accesses are effectively random (a far larger
// distance is needed). The session activates during phase A; when the
// phase switches, the watchdog's EWMA over the miss-site retirement rate
// detects the sustained degradation and the fleet re-admits the session
// into the re-tune lane, which re-enters the distance search seeded from
// the installed distance. The journal shows the whole arc:
// drift-detected, retune-scheduled, retune-complete.
package main

import (
	"fmt"
	"log"

	"rpg2"
)

func main() {
	m := rpg2.CascadeLake()
	f := rpg2.NewFleet(rpg2.FleetConfig{
		Machine: m,
		Workers: 1,
		// Sample every tuned session's rate each simulated second. This is
		// the only knob the watchdog needs; window length, degradation
		// threshold, hysteresis, re-tune budget, and re-tune delay all have
		// defaults (0.2 s, 25%, 3 samples, 1 re-tune, 0.5 s).
		WatchdogInterval: 1,
	})
	defer f.Close()

	s, err := f.Submit(rpg2.SessionSpec{
		Bench: "bc-drift",
		Seed:  1,
		Cold:  true,
		// Long enough to activate in phase A (~3 s), drift at the phase
		// switch (~11 s), and run the re-tune to completion.
		RunSeconds: 30,
		// Seed the initial search in the phase-A regime so the phase
		// switch drifts the session hard and the re-tune has work to do.
		Config: &rpg2.Config{SeedDistance: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	f.Drain()

	for _, e := range f.Journal().Events() {
		switch e.Type {
		case "drift-detected":
			fmt.Printf("drift-detected    rate %.4f vs activation ref %.4f after %d degraded windows\n",
				e.Rate, e.Ref, e.Windows)
		case "retune-scheduled":
			fmt.Printf("retune-scheduled  grant %d, search seeded from the installed d=%d\n",
				e.Retune, e.Distance)
		case "retune-complete":
			fmt.Printf("retune-complete   d=%d at rate %.4f (phase B)\n",
				e.Distance, e.Rate)
		}
	}

	rep := s.Report()
	fmt.Printf("\noutcome=%v final distance=%d re-tunes=%d\n\n",
		rep.Outcome, rep.FinalDistance, s.Retunes())
	fmt.Print(f.Snapshot().Render())
}
