// Offline tuning: use the library's sweep machinery directly — measure the
// whole prefetch-distance space for a workload, classify the curve's
// sensitivity type (the paper's Table 3 taxonomy), and compare the oracle's
// pick against what RPG²'s online search finds.
package main

import (
	"fmt"
	"log"
	"strings"

	"rpg2"
	"rpg2/internal/stats"
)

func main() {
	m := rpg2.CascadeLake()
	const bench, input = "cg", ""

	// Offline: sweep distances 1..100 at steady state.
	cfg := rpg2.DefaultSweep()
	sw, err := rpg2.RunSweep(bench, input, m, cfg)
	if err != nil {
		log.Fatal(err)
	}
	best, bestSpeedup := sw.Best()
	class := stats.Classify(sw.Distances, sw.Speedup)

	fmt.Printf("%s on %s — offline distance sweep\n\n", bench, m.Name)
	fmt.Println(asciiCurve(sw.Distances, sw.Speedup, 64, 12))
	fmt.Printf("oracle distance: %d (%.2fx), curve class: %v\n\n", best, bestSpeedup, class)

	// Online: what does RPG² find without the oracle?
	w, err := rpg2.BuildWorkload(bench, input)
	if err != nil {
		log.Fatal(err)
	}
	p, err := rpg2.Launch(m, w)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rpg2.Optimize(m, p, rpg2.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RPG² online search: outcome=%v distance=%d after %d probes\n",
		rep.Outcome, rep.FinalDistance, rep.Costs.PDEdits)
	if rep.Outcome == rpg2.Tuned {
		onlineSpeedup := speedupAt(sw, rep.FinalDistance)
		fmt.Printf("online pick is worth %.2fx vs oracle %.2fx (%.0f%% of optimal)\n",
			onlineSpeedup, bestSpeedup, 100*onlineSpeedup/bestSpeedup)
	}
}

// speedupAt interpolates the sweep at a distance.
func speedupAt(sw *rpg2.Sweep, d int) float64 {
	bestI, bestDiff := 0, 1<<30
	for i, sd := range sw.Distances {
		diff := sd - d
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestI, bestDiff = i, diff
		}
	}
	return sw.Speedup[bestI]
}

// asciiCurve renders a simple terminal plot of speedup vs distance.
func asciiCurve(ds []int, ss []float64, width, height int) string {
	maxV, minV := ss[0], ss[0]
	for _, v := range ss {
		if v > maxV {
			maxV = v
		}
		if v < minV {
			minV = v
		}
	}
	if maxV == minV {
		maxV = minV + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range ds {
		c := i * (width - 1) / max(len(ds)-1, 1)
		r := int(float64(height-1) * (maxV - ss[i]) / (maxV - minV))
		grid[r][c] = '*'
	}
	var sb strings.Builder
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%6.2fx ", maxV)
		} else if r == height-1 {
			label = fmt.Sprintf("%6.2fx ", minV)
		}
		sb.WriteString(label + "|" + string(row) + "\n")
	}
	sb.WriteString("        +" + strings.Repeat("-", width) + "\n")
	sb.WriteString(fmt.Sprintf("         d=%d%sd=%d", ds[0], strings.Repeat(" ", width-8), ds[len(ds)-1]))
	return sb.String()
}
