// Quickstart: attach RPG² to a running PageRank and watch it inject, tune,
// and keep (or discard) prefetching — the library's minimal end-to-end flow.
package main

import (
	"fmt"
	"log"

	"rpg2"
)

func main() {
	// Pick a machine and a workload. soc-alpha is a power-law graph whose
	// rank array is several times larger than the simulated LLC, so the
	// indirect load rank[edge[e]] misses constantly — prefetch-friendly.
	m := rpg2.CascadeLake()
	w, err := rpg2.BuildWorkload("pr", "soc-alpha")
	if err != nil {
		log.Fatal(err)
	}

	// Launch it and let RPG² optimize the live process.
	p, err := rpg2.Launch(m, w)
	if err != nil {
		log.Fatal(err)
	}
	counter := rpg2.WatchWork(p, w)

	report, err := rpg2.Optimize(m, p, rpg2.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("outcome: %v\n", report.Outcome)
	fmt.Printf("profiled %d LLC-miss samples; hot function %q\n", report.Samples, report.FuncName)
	for _, s := range report.Sites {
		fmt.Printf("injected prefetch kernel: pc=%d category=%v (%d instructions)\n",
			s.DemandPC, s.Category, s.KernelLen)
	}
	if report.Outcome == rpg2.Tuned {
		fmt.Printf("tuned prefetch distance: %d (explored %d)\n",
			report.FinalDistance, report.Costs.PDEdits)
	}

	// The process keeps running the optimized code after RPG² detaches.
	before := counter.Count
	p.Run(m.Seconds(5))
	after := counter.Count
	fmt.Printf("post-detach throughput: %.0f work items/simulated second\n",
		float64(after-before)/5)
}
