// Graph analytics: the motivating scenario from the paper's introduction.
// The same sssp binary processes graphs with very different shapes; the
// best prefetch distance — and whether prefetching helps at all — changes
// per input, and RPG² adapts to each one at runtime without rebuilding.
package main

import (
	"fmt"
	"log"

	"rpg2"
)

func main() {
	m := rpg2.Haswell()
	inputs := []string{
		"soc-alpha",       // large power-law social network
		"gowalla-like",    // dense uniform graph (heavy rows)
		"ro-edges-like",   // huge sparse graph (light rows)
		"as20000102-like", // small, LLC-resident
		"roadnet-pa-like", // regular mesh (hardware prefetcher territory)
	}

	fmt.Printf("sssp on %s — one binary, five inputs, RPG² adapting online\n\n", m.Name)
	fmt.Printf("%-18s %-12s %8s %9s\n", "input", "outcome", "distance", "speedup")
	for i, input := range inputs {
		outcome, distance, speedup, err := optimizeOne(m, input, int64(i))
		if err != nil {
			log.Fatalf("%s: %v", input, err)
		}
		d := "-"
		if distance > 0 {
			d = fmt.Sprint(distance)
		}
		fmt.Printf("%-18s %-12v %8s %8.2fx\n", input, outcome, d, speedup)
	}
	fmt.Println("\nStatic compilers bake one distance into the binary; RPG² picked a")
	fmt.Println("different configuration per input and fell back to the original")
	fmt.Println("code wherever prefetching did not pay.")
}

// optimizeOne runs baseline and RPG² sessions of equal length and reports
// the outcome, tuned distance, and throughput speedup.
func optimizeOne(m rpg2.Machine, input string, seed int64) (rpg2.Outcome, int, float64, error) {
	const seconds = 45.0
	run := func(optimize bool) (uint64, *rpg2.Report, error) {
		w, err := rpg2.BuildWorkload("sssp", input)
		if err != nil {
			return 0, nil, err
		}
		p, err := rpg2.Launch(m, w)
		if err != nil {
			return 0, nil, err
		}
		counter := rpg2.WatchWork(p, w)
		var rep *rpg2.Report
		if optimize {
			rep, err = rpg2.Optimize(m, p, rpg2.Config{Seed: seed})
			if err != nil {
				return 0, nil, err
			}
		}
		if budget := m.Seconds(seconds); p.Clock() < budget {
			p.Run(budget - p.Clock())
		}
		return counter.Count, rep, nil
	}
	baseWork, _, err := run(false)
	if err != nil || baseWork == 0 {
		return 0, 0, 0, fmt.Errorf("baseline failed: %v", err)
	}
	work, rep, err := run(true)
	if err != nil {
		return 0, 0, 0, err
	}
	return rep.Outcome, rep.FinalDistance, float64(work) / float64(baseWork), nil
}
