// Command rpg2-experiments regenerates the tables and figures of the RPG²
// paper's evaluation section on the simulated machines. Every measured cell
// runs as a session of an internal fleet, so each run can also emit the
// fleet's event journal and metrics snapshot.
//
// Usage:
//
//	rpg2-experiments -all              # everything (takes a while)
//	rpg2-experiments -fig 7            # one figure
//	rpg2-experiments -table 3 -quick   # one table at reduced scale
//	rpg2-experiments -smoke -fig 7 -bench pr,is -journal run.ndjson -metrics -
//	rpg2-experiments -smoke -translate -bench pr   # cross-machine transplant study
//	rpg2-experiments -smoke -drift -bench bc-drift # phase-drift watchdog study
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rpg2"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1,2,3,7,8,9,10,11,12,13)")
	table := flag.Int("table", 0, "regenerate one table (1,2,3)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	quick := flag.Bool("quick", false, "reduced scale: fewer inputs, shorter runs")
	smoke := flag.Bool("smoke", false, "smallest scale: two inputs, one trial (CI smoke)")
	trials := flag.Int("trials", 0, "override RPG² trials per input")
	parallel := flag.Int("parallel", 0, "fleet worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 0, "override the root seed (default per configuration)")
	warm := flag.Bool("warm", false, "let Figure 7's RPG² trials warm-start from the profile store")
	shards := flag.Int("store-shards", 0, "shard the fleet's profile store across this many locks (0/1 = single-shard store; results are byte-identical either way)")
	storeAddr := flag.String("store-addr", "", "share an rpg2-stored daemon's profile store at this base URL instead of an in-process store")
	translate := flag.Bool("translate", false, "run the cross-machine transplant study (cold vs warm vs translated seeding)")
	drift := flag.Bool("drift", false, "run the phase-drift study (no-watchdog baseline vs warm re-tune vs cold-re-tune ablation)")
	benches := flag.String("bench", "", "comma-separated benchmark subset for figures 7/8 and table 3")
	journal := flag.String("journal", "", "write the fleet event journal as JSON lines to this file (- for stdout)")
	metrics := flag.String("metrics", "", "write the fleet metrics snapshot as JSON to this file (- for stdout)")
	flag.Parse()

	opts := rpg2.DefaultExperiments()
	if *quick {
		opts = rpg2.QuickExperiments()
	}
	if *smoke {
		opts = rpg2.SmokeExperiments()
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	if *parallel > 0 {
		opts.Parallelism = *parallel
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	opts.WarmStart = *warm
	opts.StoreShards = *shards
	opts.StoreAddr = *storeAddr

	var benchList []string
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			if b = strings.TrimSpace(b); b != "" {
				benchList = append(benchList, b)
			}
		}
	}

	r := rpg2.NewExperiments(opts)
	defer r.Close()

	err := run(r, *fig, *table, *all, *translate, *drift, benchList)
	if err == nil {
		err = dump(r, *journal, *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-experiments:", err)
		os.Exit(1)
	}
}

// dump writes the fleet observability outputs requested by -journal and
// -metrics. A "-" destination means stdout.
func dump(r *rpg2.Experiments, journal, metrics string) error {
	to := func(dest string, write func(io.Writer) error) error {
		if dest == "-" {
			return write(os.Stdout)
		}
		f, err := os.Create(dest)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if journal != "" {
		if err := to(journal, r.Journal().WriteJSON); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if metrics != "" {
		err := to(metrics, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(r.Snapshot())
		})
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
	}
	return nil
}

func run(r *rpg2.Experiments, fig, table int, all, translate, drift bool, benches []string) error {
	out := os.Stdout
	did := false
	runTransplant := func() error {
		did = true
		res, err := r.TableTransplant(benches)
		if err != nil {
			return err
		}
		res.Render(out)
		return nil
	}
	runDrift := func() error {
		did = true
		// The drift study takes the drifting benchmark catalogue, not the
		// stock one; -bench only applies when it names drifting benches.
		var driftBenches []string
		known := make(map[string]bool)
		for _, b := range rpg2.DriftBenchmarks() {
			known[b] = true
		}
		for _, b := range benches {
			if known[b] {
				driftBenches = append(driftBenches, b)
			}
		}
		res, err := r.TableDrift(driftBenches)
		if err != nil {
			return err
		}
		res.Render(out)
		return nil
	}
	runFig := func(n int) error {
		did = true
		switch n {
		case 1:
			res, err := r.Fig1()
			if err != nil {
				return err
			}
			res.Render(out)
		case 2:
			res, err := r.Fig2()
			if err != nil {
				return err
			}
			res.Render(out)
		case 3:
			res, err := r.Fig3()
			if err != nil {
				return err
			}
			res.Render(out)
		case 7:
			res, err := r.Fig7(benches)
			if err != nil {
				return err
			}
			res.Render(out)
		case 8:
			res, err := r.Fig8(benches)
			if err != nil {
				return err
			}
			res.Render(out)
		case 9:
			res, err := r.Fig9()
			if err != nil {
				return err
			}
			res.Render(out)
		case 10:
			res, err := r.Fig10("", "")
			if err != nil {
				return err
			}
			res.Render(out)
		case 11:
			res, err := r.Fig11()
			if err != nil {
				return err
			}
			res.Render(out)
		case 12:
			res, err := r.Fig12()
			if err != nil {
				return err
			}
			res.Render(out)
		case 13:
			res, err := r.Fig13("")
			if err != nil {
				return err
			}
			res.Render(out)
		default:
			return fmt.Errorf("no figure %d (figures 4-6 are design diagrams, not results)", n)
		}
		return nil
	}
	runTable := func(n int) error {
		did = true
		switch n {
		case 1:
			res, err := r.Table1()
			if err != nil {
				return err
			}
			res.Render(out)
		case 2:
			res, err := r.Table2()
			if err != nil {
				return err
			}
			res.Render(out)
		case 3:
			res, err := r.Table3(benches)
			if err != nil {
				return err
			}
			res.Render(out)
		default:
			return fmt.Errorf("no table %d", n)
		}
		return nil
	}

	if all {
		for _, n := range []int{1, 2, 3} {
			if err := runTable(n); err != nil {
				return fmt.Errorf("table %d: %w", n, err)
			}
		}
		for _, n := range []int{1, 2, 3, 7, 8, 9, 10, 11, 12, 13} {
			if err := runFig(n); err != nil {
				return fmt.Errorf("figure %d: %w", n, err)
			}
		}
		if err := runTransplant(); err != nil {
			return err
		}
		return runDrift()
	}
	if fig != 0 {
		if err := runFig(fig); err != nil {
			return err
		}
	}
	if table != 0 {
		if err := runTable(table); err != nil {
			return err
		}
	}
	if translate {
		if err := runTransplant(); err != nil {
			return err
		}
	}
	if drift {
		if err := runDrift(); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -all, -fig N, or -table N")
	}
	return nil
}
