// Command rpg2-experiments regenerates the tables and figures of the RPG²
// paper's evaluation section on the simulated machines.
//
// Usage:
//
//	rpg2-experiments -all            # everything (takes a while)
//	rpg2-experiments -fig 7          # one figure
//	rpg2-experiments -table 3 -quick # one table at reduced scale
package main

import (
	"flag"
	"fmt"
	"os"

	"rpg2"
)

func main() {
	fig := flag.Int("fig", 0, "regenerate one figure (1,2,3,7,8,9,10,11,12,13)")
	table := flag.Int("table", 0, "regenerate one table (1,2,3)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	quick := flag.Bool("quick", false, "reduced scale: fewer inputs, shorter runs")
	trials := flag.Int("trials", 0, "override RPG² trials per input")
	flag.Parse()

	opts := rpg2.DefaultExperiments()
	if *quick {
		opts = rpg2.QuickExperiments()
	}
	if *trials > 0 {
		opts.Trials = *trials
	}
	r := rpg2.NewExperiments(opts)

	if err := run(r, *fig, *table, *all); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-experiments:", err)
		os.Exit(1)
	}
}

type renderer interface{ Render(w *os.File) }

func run(r *rpg2.Experiments, fig, table int, all bool) error {
	out := os.Stdout
	did := false
	runFig := func(n int) error {
		did = true
		switch n {
		case 1:
			res, err := r.Fig1()
			if err != nil {
				return err
			}
			res.Render(out)
		case 2:
			res, err := r.Fig2()
			if err != nil {
				return err
			}
			res.Render(out)
		case 3:
			res, err := r.Fig3()
			if err != nil {
				return err
			}
			res.Render(out)
		case 7:
			res, err := r.Fig7(nil)
			if err != nil {
				return err
			}
			res.Render(out)
		case 8:
			res, err := r.Fig8(nil)
			if err != nil {
				return err
			}
			res.Render(out)
		case 9:
			res, err := r.Fig9()
			if err != nil {
				return err
			}
			res.Render(out)
		case 10:
			res, err := r.Fig10("", "")
			if err != nil {
				return err
			}
			res.Render(out)
		case 11:
			res, err := r.Fig11()
			if err != nil {
				return err
			}
			res.Render(out)
		case 12:
			res, err := r.Fig12()
			if err != nil {
				return err
			}
			res.Render(out)
		case 13:
			res, err := r.Fig13("")
			if err != nil {
				return err
			}
			res.Render(out)
		default:
			return fmt.Errorf("no figure %d (figures 4-6 are design diagrams, not results)", n)
		}
		return nil
	}
	runTable := func(n int) error {
		did = true
		switch n {
		case 1:
			res, err := r.Table1()
			if err != nil {
				return err
			}
			res.Render(out)
		case 2:
			res, err := r.Table2()
			if err != nil {
				return err
			}
			res.Render(out)
		case 3:
			res, err := r.Table3(nil)
			if err != nil {
				return err
			}
			res.Render(out)
		default:
			return fmt.Errorf("no table %d", n)
		}
		return nil
	}

	if all {
		for _, n := range []int{1, 2, 3} {
			if err := runTable(n); err != nil {
				return fmt.Errorf("table %d: %w", n, err)
			}
		}
		for _, n := range []int{1, 2, 3, 7, 8, 9, 10, 11, 12, 13} {
			if err := runFig(n); err != nil {
				return fmt.Errorf("figure %d: %w", n, err)
			}
		}
		return nil
	}
	if fig != 0 {
		if err := runFig(fig); err != nil {
			return err
		}
	}
	if table != 0 {
		if err := runTable(table); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -all, -fig N, or -table N")
	}
	return nil
}
