// Command rpg2 runs the RPG² online optimizer against one benchmark on a
// simulated machine and reports what happened: activation, injected sites,
// the distance search trace, the final outcome, and the resulting speedup
// over a no-prefetch run of the same length.
//
// Usage:
//
//	rpg2 -bench pr -input soc-alpha -machine cascadelake -seconds 60
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"rpg2"
)

func main() {
	bench := flag.String("bench", "pr", "benchmark: pr, bfs, sssp, bc, is, cg, randacc")
	input := flag.String("input", "soc-alpha", "graph input name (CRONO benchmarks; empty for AJ)")
	machineName := flag.String("machine", "cascadelake", "machine: cascadelake or haswell")
	seconds := flag.Float64("seconds", 60, "total simulated run duration")
	seed := flag.Int64("seed", 1, "controller random seed")
	timeline := flag.Bool("timeline", false, "print the session's performance timeline")
	jsonOut := flag.Bool("json", false, "emit the session report as JSON instead of text")
	flag.Parse()

	if err := run(*bench, *input, *machineName, *seconds, *seed, *timeline, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2:", err)
		os.Exit(1)
	}
}

func run(bench, input, machineName string, seconds float64, seed int64, timeline, jsonOut bool) error {
	m, ok := rpg2.MachineByName(machineName)
	if !ok {
		return fmt.Errorf("unknown machine %q", machineName)
	}
	if bench == "is" || bench == "cg" || bench == "randacc" {
		input = ""
	}

	// No-prefetch reference run of the same duration.
	w, err := rpg2.BuildWorkload(bench, input)
	if err != nil {
		return err
	}
	ref, err := rpg2.Launch(m, w)
	if err != nil {
		return err
	}
	refCounter := rpg2.WatchWork(ref, w)
	ref.Run(m.Seconds(seconds))
	refWork := refCounter.Count

	// Optimized run.
	w2, err := rpg2.BuildWorkload(bench, input)
	if err != nil {
		return err
	}
	p, err := rpg2.Launch(m, w2)
	if err != nil {
		return err
	}
	counter := rpg2.WatchWork(p, w2)
	rep, err := rpg2.Optimize(m, p, rpg2.Config{Seed: seed})
	if err != nil {
		return err
	}
	if budget := m.Seconds(seconds); p.Clock() < budget {
		p.Run(budget - p.Clock())
	}
	work := counter.Count

	if jsonOut {
		// The fleet's event journal embeds reports with this same
		// encoding, so single-session dumps and journals share tooling.
		out := struct {
			Bench   string
			Input   string
			Machine string
			Speedup float64
			Report  *rpg2.Report
		}{bench, input, m.Name, 0, rep}
		if refWork > 0 {
			out.Speedup = float64(work) / float64(refWork)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("benchmark      %s/%s on %s\n", bench, input, m.Name)
	fmt.Printf("outcome        %v\n", rep.Outcome)
	fmt.Printf("PEBS samples   %d\n", rep.Samples)
	if rep.Outcome == rpg2.Tuned || rep.Outcome == rpg2.RolledBack {
		fmt.Printf("hot function   %s (%d prefetch site(s))\n", rep.FuncName, len(rep.Sites))
		for _, s := range rep.Sites {
			fmt.Printf("  site pc=%d category=%v kernel=%d instrs\n", s.DemandPC, s.Category, s.KernelLen)
		}
		var ds []int
		for d := range rep.Explored {
			ds = append(ds, d)
		}
		sort.Ints(ds)
		fmt.Printf("search         start=%d, explored %d distances:", rep.InitialDistance, len(ds))
		for _, d := range ds {
			fmt.Printf(" %d", d)
		}
		fmt.Println()
	}
	if rep.Outcome == rpg2.Tuned {
		fmt.Printf("final distance %d\n", rep.FinalDistance)
	}
	fmt.Printf("costs          exec=%.1fs bolt=%.1fms insert=%.1fms pd-edit=%.2fms x%d\n",
		rep.Costs.ExecSeconds, 1000*rep.Costs.BOLTSeconds,
		1000*rep.Costs.CodeInsertSeconds, 1000*rep.Costs.PDEditSeconds, rep.Costs.PDEdits)
	if refWork > 0 {
		fmt.Printf("speedup        %.3fx over no-prefetch (%d vs %d work items in %.0fs)\n",
			float64(work)/float64(refWork), work, refWork, seconds)
	}
	if timeline {
		fmt.Println("timeline:")
		for _, pt := range rep.Timeline {
			fmt.Printf("  t=%6.2fs ipc=%.3f rate=%.4f [%s]\n", pt.Seconds, pt.IPC, pt.Rate, pt.Phase)
		}
	}
	return nil
}
