// Command rpg2-fleetctl talks to a running rpg2-fleetd over its HTTP API.
//
// Subcommands:
//
//	rpg2-fleetctl -addr http://127.0.0.1:8047 submit -bench is -seed 7
//	rpg2-fleetctl status 3
//	rpg2-fleetctl wait 3
//	rpg2-fleetctl result 3
//	rpg2-fleetctl metrics
//	rpg2-fleetctl events -since 0
//	rpg2-fleetctl drift -since 0
//	rpg2-fleetctl lookup -bench is
//	rpg2-fleetctl batch -bench is,cg,mg -tenant alice -count 2
//	rpg2-fleetctl health
//
// batch submits count sessions per benchmark under one tenant, waits for
// every accepted session, and prints one grep-able summary line per
// category (accepted/rejected/terminal states) — the shape the CI smoke
// job asserts on. A 429 rejection is reported, not retried, so the
// backpressure behaviour stays visible.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"rpg2"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8047", "base URL of the rpg2-fleetd daemon")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall deadline for the subcommand")
	overloadRetries := flag.Int("overload-retries", 0, "absorb 429s by waiting out Retry-After (with deterministic jitter) this many times before giving up")
	jitterSeed := flag.Int64("jitter-seed", 0, "seed for the client's deterministic retry jitter (0 = default)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "rpg2-fleetctl: need a subcommand: submit | status | wait | result | metrics | events | drift | lookup | batch | health")
		os.Exit(2)
	}

	cli := rpg2.NewFleetClient(rpg2.FleetClientConfig{
		BaseURL:         *addr,
		OverloadRetries: *overloadRetries,
		Seed:            *jitterSeed,
	})
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var err error
	switch cmd, rest := args[0], args[1:]; cmd {
	case "submit":
		err = runSubmit(ctx, cli, rest)
	case "status":
		err = runStatus(ctx, cli, rest)
	case "wait":
		err = runWait(ctx, cli, rest)
	case "result":
		err = runResult(ctx, cli, rest)
	case "metrics":
		err = runMetrics(ctx, cli)
	case "events":
		err = runEvents(ctx, cli, rest)
	case "drift":
		err = runDrift(ctx, cli, rest)
	case "lookup":
		err = runLookup(ctx, cli, rest)
	case "batch":
		err = runBatch(ctx, cli, rest)
	case "health":
		err = runHealth(ctx, cli)
	default:
		err = fmt.Errorf("unknown subcommand %q", cmd)
	}
	if err != nil {
		exitErr(err)
	}
}

// exitErr maps error classes to distinct exit codes so scripts can branch
// without parsing messages: 3 = daemon backpressure (come back after the
// printed Retry-After), 4 = unknown session or empty store lookup, 1 =
// everything else.
func exitErr(err error) {
	var over *rpg2.FleetClientOverloaded
	switch {
	case errors.As(err, &over):
		fmt.Fprintf(os.Stderr, "rpg2-fleetctl: daemon overloaded, retry after %s: %v\n", over.RetryAfter, err)
		os.Exit(3)
	case errors.Is(err, rpg2.ErrFleetNotFound):
		fmt.Fprintln(os.Stderr, "rpg2-fleetctl: not found:", err)
		os.Exit(4)
	default:
		fmt.Fprintln(os.Stderr, "rpg2-fleetctl:", err)
		os.Exit(1)
	}
}

// specFlags registers the session-spec flags shared by submit and batch.
func specFlags(fs *flag.FlagSet) (bench, input, tenant *string, seed *int64, priority *int, cold *bool, seconds *float64) {
	bench = fs.String("bench", "", "benchmark name (required)")
	input = fs.String("input", "", "graph/synthetic input (empty for AJ benchmarks)")
	tenant = fs.String("tenant", "", "tenant the session is accounted to")
	seed = fs.Int64("seed", 0, "deterministic seed")
	priority = fs.Int("priority", 0, "admission priority (higher dispatches first)")
	cold = fs.Bool("cold", false, "skip the profile store for this session")
	seconds = fs.Float64("seconds", 0, "simulated run budget override (0 = daemon default)")
	return
}

func runSubmit(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	bench, input, tenant, seed, priority, cold, seconds := specFlags(fs)
	wait := fs.Bool("wait", false, "block until the session is terminal and print its outcome")
	fs.Parse(args)
	if *bench == "" {
		return errors.New("submit: -bench is required")
	}
	spec := rpg2.SessionRecord{
		Bench: *bench, Input: *input, Tenant: *tenant, Seed: *seed,
		Priority: *priority, Cold: *cold, RunSeconds: *seconds,
	}
	id, err := cli.Submit(ctx, spec)
	if err != nil {
		var over *rpg2.FleetClientOverloaded
		if errors.As(err, &over) {
			fmt.Printf("rejected retry-after=%s\n", over.RetryAfter)
			os.Exit(3)
		}
		return err
	}
	fmt.Printf("submitted id=%d\n", id)
	if *wait {
		out, err := cli.Wait(ctx, id)
		if err != nil {
			return err
		}
		return printJSON(out)
	}
	return nil
}

func parseID(args []string) (int, error) {
	if len(args) != 1 {
		return 0, errors.New("need exactly one session ID")
	}
	return strconv.Atoi(args[0])
}

func runStatus(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	id, err := parseID(args)
	if err != nil {
		return err
	}
	st, err := cli.Status(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func runWait(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	id, err := parseID(args)
	if err != nil {
		return err
	}
	out, err := cli.Wait(ctx, id)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func runResult(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	id, err := parseID(args)
	if err != nil {
		return err
	}
	out, ready, err := cli.Result(ctx, id)
	if err != nil {
		return err
	}
	if !ready {
		return fmt.Errorf("session %d is not terminal yet (use wait)", id)
	}
	return printJSON(out)
}

func runMetrics(ctx context.Context, cli *rpg2.FleetClient) error {
	snap, err := cli.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(snap.Render())
	return nil
}

func runEvents(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	since := fs.Int("since", -1, "replay events with sequence > since before following (-1 = everything)")
	fs.Parse(args)
	enc := json.NewEncoder(os.Stdout)
	return cli.Stream(ctx, *since, func(e rpg2.FleetEvent) error {
		return enc.Encode(e)
	})
}

// runDrift follows the event stream but keeps only the phase-drift
// watchdog lane — drift-detected, retune-scheduled, retune-complete — as
// one grep-able line each, so an operator can watch re-tunes fire without
// wading through the full journal.
func runDrift(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	since := fs.Int("since", -1, "replay events with sequence > since before following (-1 = everything)")
	fs.Parse(args)
	return cli.Stream(ctx, *since, func(e rpg2.FleetEvent) error {
		switch e.Type {
		case "drift-detected":
			fmt.Printf("drift-detected session=%d bench=%s/%s retune=%d rate=%.4f ref=%.4f windows=%d\n",
				e.Session, e.Bench, e.Input, e.Retune, e.Rate, e.Ref, e.Windows)
		case "retune-scheduled":
			fmt.Printf("retune-scheduled session=%d bench=%s/%s retune=%d seed-distance=%d due=%.2f\n",
				e.Session, e.Bench, e.Input, e.Retune, e.Distance, e.Due)
		case "retune-complete":
			fmt.Printf("retune-complete session=%d bench=%s/%s retune=%d distance=%d rate=%.4f\n",
				e.Session, e.Bench, e.Input, e.Retune, e.Distance, e.Rate)
		}
		return nil
	})
}

func runLookup(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark name (required)")
	input := fs.String("input", "", "graph/synthetic input")
	machine := fs.String("machine", "", "machine name (empty = daemon's machine)")
	translated := fs.Bool("translated", false, "fall back to a sibling machine's translated profile")
	fs.Parse(args)
	if *bench == "" {
		return errors.New("lookup: -bench is required")
	}
	k := rpg2.FleetKey{Bench: *bench, Input: *input, Machine: *machine}
	var (
		res rpg2.FleetLookupResult
		err error
	)
	if *translated {
		res, err = cli.LookupTranslated(ctx, k)
	} else {
		res, err = cli.Lookup(ctx, k)
	}
	if err != nil {
		if errors.Is(err, rpg2.ErrFleetNotFound) {
			// %w keeps the ErrFleetNotFound chain intact so exitErr maps
			// this to its distinct exit code.
			return fmt.Errorf("no profile for %s/%s: %w", *bench, *input, err)
		}
		return err
	}
	return printJSON(res)
}

func runBatch(ctx context.Context, cli *rpg2.FleetClient, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	benches := fs.String("bench", "is,cg,mg", "comma-separated benchmark names")
	tenant := fs.String("tenant", "", "tenant all sessions are accounted to")
	count := fs.Int("count", 1, "sessions per benchmark")
	seed := fs.Int64("seed", 1, "base seed (incremented per session)")
	nowait := fs.Bool("nowait", false, "submit only; don't wait for terminal states")
	fs.Parse(args)

	var accepted []int
	rejected := 0
	s := *seed
	for _, b := range strings.Split(*benches, ",") {
		b = strings.TrimSpace(b)
		if b == "" {
			continue
		}
		for i := 0; i < *count; i++ {
			id, err := cli.Submit(ctx, rpg2.SessionRecord{Bench: b, Tenant: *tenant, Seed: s})
			s++
			var over *rpg2.FleetClientOverloaded
			switch {
			case err == nil:
				accepted = append(accepted, id)
			case errors.As(err, &over):
				rejected++
				fmt.Printf("batch rejected tenant=%s bench=%s retry-after=%s\n", *tenant, b, over.RetryAfter)
			default:
				return err
			}
		}
	}
	fmt.Printf("batch submitted tenant=%s accepted=%d rejected=%d\n", *tenant, len(accepted), rejected)
	if *nowait {
		return nil
	}

	states := map[string]int{}
	for _, id := range accepted {
		out, err := cli.Wait(ctx, id)
		if err != nil {
			return fmt.Errorf("wait %d: %w", id, err)
		}
		states[out.State]++
	}
	keys := make([]string, 0, len(states))
	for k := range states {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("batch terminal tenant=%s state=%s count=%d\n", *tenant, k, states[k])
	}
	fmt.Printf("batch done tenant=%s terminal=%d\n", *tenant, len(accepted))
	return nil
}

func runHealth(ctx context.Context, cli *rpg2.FleetClient) error {
	st, err := cli.Health(ctx)
	if err != nil {
		return err
	}
	fmt.Println(st)
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
