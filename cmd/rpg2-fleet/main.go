// Command rpg2-fleet runs RPG² as a fleet service: N optimization sessions
// drawn round-robin from the workload×input catalogue are pushed through a
// bounded worker pool sharing one profile store, and the fleet-wide metrics
// snapshot is printed at the end — sessions/sec, activation and rollback
// rates, store hit rate, p50/p95 session wall time, and the cold-vs-warm
// search cost.
//
// Usage:
//
//	rpg2-fleet -machine cascadelake -sessions 32 -workers 4
//	rpg2-fleet -bench pr,bfs -pairs 4 -sessions 24 -journal
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rpg2"
)

func main() {
	machineName := flag.String("machine", "cascadelake", "machine: cascadelake or haswell")
	sessions := flag.Int("sessions", 32, "number of optimization sessions to run")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	seconds := flag.Float64("seconds", 2, "simulated post-optimization run budget per session")
	seed := flag.Int64("seed", 1, "root seed; session i uses seed+i")
	benches := flag.String("bench", "all", "comma-separated benchmarks to draw from, or all")
	pairs := flag.Int("pairs", 8, "limit of distinct (benchmark, input) pairs (0 = no limit)")
	journal := flag.Bool("journal", false, "dump the event journal as JSON lines after the snapshot")
	metrics := flag.String("metrics", "", "also write the metrics snapshot as JSON to this file (- for stdout)")
	nostore := flag.Bool("no-store", false, "disable the profile store (every session cold)")
	flag.Parse()

	if err := run(*machineName, *sessions, *workers, *seconds, *seed, *benches, *pairs, *journal, *metrics, *nostore); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-fleet:", err)
		os.Exit(1)
	}
}

// catalogue builds the (benchmark, input) pairs the fleet draws from.
func catalogue(benches string, limit int) ([]rpg2.SessionSpec, error) {
	want := make(map[string]bool)
	if benches == "all" || benches == "" {
		for _, b := range rpg2.Benchmarks() {
			want[b] = true
		}
	} else {
		known := make(map[string]bool)
		for _, b := range rpg2.Benchmarks() {
			known[b] = true
		}
		for _, b := range strings.Split(benches, ",") {
			b = strings.TrimSpace(b)
			if !known[b] {
				return nil, fmt.Errorf("unknown benchmark %q (have %v)", b, rpg2.Benchmarks())
			}
			want[b] = true
		}
	}
	var specs []rpg2.SessionSpec
	for _, b := range rpg2.Benchmarks() {
		if !want[b] {
			continue
		}
		switch b {
		case "pr", "bfs", "sssp":
			for _, in := range rpg2.GraphInputs() {
				specs = append(specs, rpg2.SessionSpec{Bench: b, Input: in.Name})
			}
		case "bc":
			for _, in := range rpg2.SyntheticInputs() {
				specs = append(specs, rpg2.SessionSpec{Bench: b, Input: in.Name})
			}
		default: // AJ benchmarks carry a fixed input
			specs = append(specs, rpg2.SessionSpec{Bench: b})
		}
	}
	if limit > 0 && len(specs) > limit {
		specs = specs[:limit]
	}
	return specs, nil
}

func run(machineName string, sessions, workers int, seconds float64, seed int64,
	benches string, pairs int, journal bool, metrics string, nostore bool) error {

	m, ok := rpg2.MachineByName(machineName)
	if !ok {
		return fmt.Errorf("unknown machine %q", machineName)
	}
	pool, err := catalogue(benches, pairs)
	if err != nil {
		return err
	}
	if len(pool) == 0 {
		return fmt.Errorf("no (benchmark, input) pairs selected")
	}

	f := rpg2.NewFleet(rpg2.FleetConfig{
		Machine:      m,
		Workers:      workers,
		RunSeconds:   seconds,
		DisableStore: nostore,
	})
	defer f.Close()

	specs := make([]rpg2.SessionSpec, sessions)
	for i := range specs {
		specs[i] = pool[i%len(pool)]
		specs[i].Seed = seed + int64(i)
	}
	fmt.Printf("running %d sessions over %d (benchmark, input) pairs on %s\n\n",
		sessions, len(pool), m.Name)
	if _, err := f.Run(specs); err != nil {
		return err
	}

	fmt.Print(f.Snapshot().Render())
	for _, s := range f.Sessions() {
		if err := s.Err(); err != nil {
			fmt.Printf("session %d (%s/%s) failed: %v\n", s.ID, s.Spec.Bench, s.Spec.Input, err)
		}
	}
	if journal {
		fmt.Println()
		if err := f.Journal().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if metrics != "" {
		out := os.Stdout
		if metrics != "-" {
			file, err := os.Create(metrics)
			if err != nil {
				return err
			}
			defer file.Close()
			out = file
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(f.Snapshot()); err != nil {
			return err
		}
	}
	return nil
}
