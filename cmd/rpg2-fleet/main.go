// Command rpg2-fleet runs RPG² as a fleet service: N optimization sessions
// drawn round-robin from the workload×input catalogue are pushed through a
// bounded worker pool sharing one profile store, and the fleet-wide metrics
// snapshot is printed at the end — sessions/sec, activation and rollback
// rates, store hit rate, p50/p95 session wall time, and the cold-vs-warm
// search cost.
//
// Usage:
//
//	rpg2-fleet -machine cascadelake -sessions 32 -workers 4
//	rpg2-fleet -bench pr,bfs -pairs 4 -sessions 24 -journal
//	rpg2-fleet -sessions 48 -faults 0.2 -retries 2 -quota 2
//
// With -state-dir the fleet is crash-safe: every event is journaled to an
// append-only checksummed WAL and the profile store snapshots alongside
// it, so a killed run resumes with -resume — committed profiles survive
// and interrupted sessions re-run:
//
//	rpg2-fleet -state-dir ./state -fsync always -sessions 48
//	rpg2-fleet -state-dir ./state -resume
//
// A state dir that still holds an interrupted run is protected: starting
// fresh over it refuses with an error unless -fresh explicitly discards
// the unfinished work.
//
// SIGINT triggers a graceful shutdown: queued sessions are cancelled,
// in-flight sessions drain, the WAL is flushed and closed (so the state
// dir is resumable), and the snapshot (and journal, if requested) still
// prints.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"rpg2"
)

// options carries every CLI flag into run.
type options struct {
	machine   string
	sessions  int
	workers   int
	seconds   float64
	seed      int64
	benches   string
	pairs     int
	journal   bool
	metrics   string
	nostore   bool
	translate bool
	shards    int
	storeAddr string

	// Admission & resilience knobs.
	faults    float64
	faultSeed int64
	retries   int
	quota     int
	breaker   int

	// Phase-drift watchdog knobs.
	watchdog   float64
	wdWindow   float64
	wdThresh   float64
	wdHyst     int
	retunes    int
	retuneWait float64
	retuneCold bool

	// Persistence knobs.
	stateDir string
	resume   bool
	fresh    bool
	fsync    string

	// Disk-chaos knobs.
	diskWrite    float64
	diskSync     float64
	diskSnapshot float64
	rearmBackoff int
}

func main() {
	var o options
	flag.StringVar(&o.machine, "machine", "cascadelake", "machine: cascadelake or haswell")
	flag.IntVar(&o.sessions, "sessions", 32, "number of optimization sessions to run")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Float64Var(&o.seconds, "seconds", 2, "simulated post-optimization run budget per session")
	flag.Int64Var(&o.seed, "seed", 1, "root seed; session i uses seed+i")
	flag.StringVar(&o.benches, "bench", "all", "comma-separated benchmarks to draw from, or all")
	flag.IntVar(&o.pairs, "pairs", 8, "limit of distinct (benchmark, input) pairs (0 = no limit)")
	flag.BoolVar(&o.journal, "journal", false, "dump the event journal as JSON lines after the snapshot")
	flag.StringVar(&o.metrics, "metrics", "", "also write the metrics snapshot as JSON to this file (- for stdout)")
	flag.BoolVar(&o.nostore, "no-store", false, "disable the profile store (every session cold)")
	flag.BoolVar(&o.translate, "translate", false, "on a store miss, seed from a sibling machine's profile with a latency-scaled distance")
	flag.IntVar(&o.shards, "store-shards", 0, "shard the profile store by (bench, input) hash across this many locks (0/1 = single-shard store, byte-identical to the unsharded fleet)")
	flag.StringVar(&o.storeAddr, "store-addr", "", "share an rpg2-stored daemon's profile store at this base URL (e.g. http://127.0.0.1:8049) instead of an in-process store")
	flag.Float64Var(&o.faults, "faults", 0, "deterministic fault-injection rate per controller stage (0 = off)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "fault injector seed")
	flag.IntVar(&o.retries, "retries", 0, "retry budget for failed/rolled-back sessions (0 = no retry lane)")
	flag.IntVar(&o.quota, "quota", 0, "max in-flight sessions per (benchmark, input) pair (0 = unlimited)")
	flag.IntVar(&o.breaker, "breaker", 0, "consecutive rollbacks that trip a pair's circuit breaker (0 = off)")
	flag.Float64Var(&o.watchdog, "watchdog-interval", 0, "sample tuned sessions every this many simulated seconds for phase drift (0 = watchdog off, byte-identical fleet)")
	flag.Float64Var(&o.wdWindow, "watchdog-window", 0, "measured window length per watchdog sample in simulated seconds (0 = default 0.2)")
	flag.Float64Var(&o.wdThresh, "watchdog-threshold", 0, "relative rate degradation that counts as drifted (0 = default 0.25)")
	flag.IntVar(&o.wdHyst, "watchdog-hysteresis", 0, "consecutive degraded samples before the watchdog fires (0 = default 3)")
	flag.IntVar(&o.retunes, "max-retunes", 0, "re-tune lane budget per session (0 = default 1 when the watchdog is armed)")
	flag.Float64Var(&o.retuneWait, "retune-delay", 0, "fixed virtual delay before a re-tune dispatch (0 = default 0.5)")
	flag.BoolVar(&o.retuneCold, "retune-cold", false, "ablation: re-tune searches start cold instead of seeded from the installed distance")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist the journal WAL and profile-store snapshots here (empty = in-memory only)")
	flag.BoolVar(&o.resume, "resume", false, "recover the state dir and finish its interrupted sessions instead of submitting new work")
	flag.BoolVar(&o.fresh, "fresh", false, "discard a state dir's interrupted run and start a fresh epoch (default: refuse)")
	flag.StringVar(&o.fsync, "fsync", "interval", "WAL durability: interval, always, or never")
	flag.Float64Var(&o.diskWrite, "chaos-disk-write", 0, "probability a WAL write fails with an injected disk fault (0 = off)")
	flag.Float64Var(&o.diskSync, "chaos-disk-sync", 0, "probability a WAL fsync fails with an injected disk fault")
	flag.Float64Var(&o.diskSnapshot, "chaos-disk-snapshot", 0, "probability a snapshot rewrite fails with an injected disk fault")
	flag.IntVar(&o.rearmBackoff, "rearm-backoff", 0, "journal events to wait before degraded persistence retries re-arming (0 = default 64, negative = stay degraded)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-fleet:", err)
		os.Exit(1)
	}
}

// catalogue builds the (benchmark, input) pairs the fleet draws from. The
// drifting benchmarks (bc-drift, is-drift, chase-drift) are opt-in by
// explicit name — "all" means the stock catalogue, byte-identical to
// before the watchdog existed.
func catalogue(benches string, limit int) ([]rpg2.SessionSpec, error) {
	want := make(map[string]bool)
	if benches == "all" || benches == "" {
		for _, b := range rpg2.Benchmarks() {
			want[b] = true
		}
	} else {
		known := make(map[string]bool)
		for _, b := range rpg2.Benchmarks() {
			known[b] = true
		}
		for _, b := range rpg2.DriftBenchmarks() {
			known[b] = true
		}
		for _, b := range strings.Split(benches, ",") {
			b = strings.TrimSpace(b)
			if !known[b] {
				return nil, fmt.Errorf("unknown benchmark %q (have %v plus drift %v)",
					b, rpg2.Benchmarks(), rpg2.DriftBenchmarks())
			}
			want[b] = true
		}
	}
	var specs []rpg2.SessionSpec
	for _, b := range rpg2.Benchmarks() {
		if !want[b] {
			continue
		}
		switch b {
		case "pr", "bfs", "sssp":
			for _, in := range rpg2.GraphInputs() {
				specs = append(specs, rpg2.SessionSpec{Bench: b, Input: in.Name})
			}
		case "bc":
			for _, in := range rpg2.SyntheticInputs() {
				specs = append(specs, rpg2.SessionSpec{Bench: b, Input: in.Name})
			}
		default: // AJ benchmarks carry a fixed input
			specs = append(specs, rpg2.SessionSpec{Bench: b})
		}
	}
	for _, b := range rpg2.DriftBenchmarks() {
		if want[b] {
			specs = append(specs, rpg2.SessionSpec{Bench: b})
		}
	}
	if limit > 0 && len(specs) > limit {
		specs = specs[:limit]
	}
	return specs, nil
}

func run(o options) error {
	m, ok := rpg2.MachineByName(o.machine)
	if !ok {
		return fmt.Errorf("unknown machine %q", o.machine)
	}
	pool, err := catalogue(o.benches, o.pairs)
	if err != nil {
		return err
	}
	if len(pool) == 0 {
		return fmt.Errorf("no (benchmark, input) pairs selected")
	}

	fsync, err := rpg2.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return err
	}
	// Guard the operator who forgets -resume: a state dir holding an
	// interrupted run is recoverable work, not scratch space.
	if o.stateDir != "" && !o.resume && !o.fresh {
		if n := rpg2.FleetPendingSessions(o.stateDir); n > 0 {
			return fmt.Errorf("state dir %q holds an interrupted run (%d unfinished sessions); pass -resume to finish it or -fresh to discard it", o.stateDir, n)
		}
	}
	cfg := rpg2.FleetConfig{
		Machine:            m,
		Workers:            o.workers,
		RunSeconds:         o.seconds,
		DisableStore:       o.nostore,
		StoreShards:        o.shards,
		StoreAddr:          o.storeAddr,
		Translate:          o.translate,
		Quota:              o.quota,
		MaxRetries:         o.retries,
		BreakerThreshold:   o.breaker,
		StateDir:           o.stateDir,
		Fsync:              fsync,
		Overwrite:          o.fresh,
		WatchdogInterval:   o.watchdog,
		WatchdogWindow:     o.wdWindow,
		WatchdogThreshold:  o.wdThresh,
		WatchdogHysteresis: o.wdHyst,
		MaxRetunes:         o.retunes,
		RetuneDelay:        o.retuneWait,
		RetuneCold:         o.retuneCold,
	}
	if o.faults > 0 {
		cfg.Faults = rpg2.NewFaultInjector(rpg2.FaultConfig{Seed: o.faultSeed, Rate: o.faults})
	}
	if o.diskWrite > 0 || o.diskSync > 0 || o.diskSnapshot > 0 {
		cfg.DiskFaults = rpg2.NewDiskFaultInjector(rpg2.DiskFaultConfig{
			Seed:         o.faultSeed,
			WriteRate:    o.diskWrite,
			SyncRate:     o.diskSync,
			SnapshotRate: o.diskSnapshot,
		})
	}
	cfg.RearmBackoff = o.rearmBackoff

	var f *rpg2.Fleet
	var rec *rpg2.FleetRecovery
	if o.resume {
		if o.stateDir == "" {
			return fmt.Errorf("-resume needs -state-dir")
		}
		f, rec, err = rpg2.RecoverFleet(o.stateDir, cfg)
		if err != nil {
			return err
		}
		fmt.Println(rec.Summary())
	} else {
		f = rpg2.NewFleet(cfg)
	}
	defer f.Close()

	// SIGINT: cancel everything still queued, let in-flight sessions drain,
	// and fall through to the snapshot/journal printing below. The explicit
	// Close before the snapshot flushes the WAL, so an interrupted -state-dir
	// run is resumable.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if sig, ok := <-sigc; ok {
			n := f.CancelQueued()
			fmt.Fprintf(os.Stderr, "\nrpg2-fleet: %v: cancelled %d queued sessions, draining in-flight\n", sig, n)
			signal.Stop(sigc) // a second signal kills the process normally
		}
	}()

	if o.resume {
		f.Drain()
	} else {
		specs := make([]rpg2.SessionSpec, o.sessions)
		for i := range specs {
			specs[i] = pool[i%len(pool)]
			specs[i].Seed = o.seed + int64(i)
		}
		fmt.Printf("running %d sessions over %d (benchmark, input) pairs on %s\n\n",
			o.sessions, len(pool), m.Name)
		if _, err := f.Run(specs); err != nil {
			return err
		}
	}

	// Close before printing: workers stop, the final snapshot lands, and
	// the WAL is flushed and closed — whatever happens after this line, the
	// state dir is consistent.
	f.Close()
	snap := f.Snapshot()
	fmt.Print(snap.Render())
	if o.resume {
		terminal := 0
		for _, s := range rec.Requeued {
			if s.State().Terminal() {
				terminal++
			}
		}
		fmt.Printf("resume complete: %d recovered sessions terminal, %d store entries live\n",
			terminal, snap.StoreEntries)
		if terminal != len(rec.Requeued) {
			return fmt.Errorf("%d recovered sessions never finished", len(rec.Requeued)-terminal)
		}
	}
	for _, s := range f.Sessions() {
		if err := s.Err(); err != nil {
			fmt.Printf("session %d (%s/%s) failed: %v\n", s.ID, s.Spec.Bench, s.Spec.Input, err)
		}
	}
	if o.journal {
		fmt.Println()
		if err := f.Journal().WriteJSON(os.Stdout); err != nil {
			return err
		}
	}
	if o.metrics != "" {
		out := os.Stdout
		if o.metrics != "-" {
			file, err := os.Create(o.metrics)
			if err != nil {
				return err
			}
			defer file.Close()
			out = file
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			return err
		}
	}
	return nil
}
