// Command rpg2-fleetd serves a fleet over HTTP: the long-lived daemon the
// client library (and rpg2-fleetctl) talk to. Sessions are submitted as
// JSON specs, polled by ID, and fetched as terminal outcomes; the profile
// store answers read-only lookups; the journal streams as NDJSON with a
// resumable sequence cursor; and the metrics snapshot is one GET away.
//
// Usage:
//
//	rpg2-fleetd -listen 127.0.0.1:8047 -machine cascadelake -workers 4
//	rpg2-fleetd -listen :8047 -state-dir ./state -fsync always
//	rpg2-fleetd -listen :8047 -state-dir ./state -resume
//	rpg2-fleetd -listen :8047 -tenant-queue 8 -max-queue 64 -tenant-quota 2
//
// Backpressure: -max-queue caps the total waiting sessions and
// -tenant-queue caps one tenant's share; a submission over either cap is
// rejected with HTTP 429 and a Retry-After header instead of growing the
// queue without bound. -tenant-quota additionally bounds each tenant's
// in-flight sessions.
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions get 503,
// queued sessions journal as cancelled, in-flight sessions finish, the
// WAL flushes, event streams end cleanly, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpg2"
)

type options struct {
	listen  string
	machine string
	workers int
	seconds float64

	nostore   bool
	translate bool
	shards    int
	storeAddr string

	quota       int
	tenantQuota int
	maxQueue    int
	tenantQueue int
	retries     int
	breaker     int

	watchdog   float64
	wdWindow   float64
	wdThresh   float64
	wdHyst     int
	retunes    int
	retuneWait float64
	retuneCold bool

	stateDir string
	resume   bool
	fresh    bool
	fsync    string

	retryAfterCap int
	addrFile      string

	reqTimeout time.Duration
	maxBody    int64

	chaosSeed    int64
	diskWrite    float64
	diskSync     float64
	diskSnapshot float64
	rearmBackoff int
	netDelay     float64
	netError     float64
	netSever     float64
	netPanic     float64
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8047", "address to serve the HTTP API on")
	flag.StringVar(&o.machine, "machine", "cascadelake", "machine: cascadelake or haswell")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.Float64Var(&o.seconds, "seconds", 2, "default simulated post-optimization run budget per session")
	flag.BoolVar(&o.nostore, "no-store", false, "disable the profile store (every session cold)")
	flag.BoolVar(&o.translate, "translate", false, "on a store miss, seed from a sibling machine's profile with a latency-scaled distance")
	flag.IntVar(&o.shards, "store-shards", 0, "shard the profile store by (bench, input) hash across this many locks (0/1 = single-shard store, byte-identical to the unsharded fleet)")
	flag.StringVar(&o.storeAddr, "store-addr", "", "share an rpg2-stored daemon's profile store at this base URL (e.g. http://127.0.0.1:8049) instead of an in-process store")
	flag.IntVar(&o.quota, "quota", 0, "max in-flight sessions per (benchmark, input) pair (0 = unlimited)")
	flag.IntVar(&o.tenantQuota, "tenant-quota", 0, "max in-flight sessions per tenant (0 = unlimited)")
	flag.IntVar(&o.maxQueue, "max-queue", 0, "max waiting sessions before submissions get 429 (0 = unbounded)")
	flag.IntVar(&o.tenantQueue, "tenant-queue", 0, "max waiting sessions per tenant before its submissions get 429 (0 = unbounded)")
	flag.IntVar(&o.retries, "retries", 0, "retry budget for failed/rolled-back sessions (0 = no retry lane)")
	flag.IntVar(&o.breaker, "breaker", 0, "consecutive rollbacks that trip a pair's circuit breaker (0 = off)")
	flag.Float64Var(&o.watchdog, "watchdog-interval", 0, "sample tuned sessions every this many simulated seconds for phase drift (0 = watchdog off, byte-identical fleet)")
	flag.Float64Var(&o.wdWindow, "watchdog-window", 0, "measured window length per watchdog sample in simulated seconds (0 = default 0.2)")
	flag.Float64Var(&o.wdThresh, "watchdog-threshold", 0, "relative rate degradation that counts as drifted (0 = default 0.25)")
	flag.IntVar(&o.wdHyst, "watchdog-hysteresis", 0, "consecutive degraded samples before the watchdog fires (0 = default 3)")
	flag.IntVar(&o.retunes, "max-retunes", 0, "re-tune lane budget per session (0 = default 1 when the watchdog is armed)")
	flag.Float64Var(&o.retuneWait, "retune-delay", 0, "fixed virtual delay before a re-tune dispatch (0 = default 0.5)")
	flag.BoolVar(&o.retuneCold, "retune-cold", false, "ablation: re-tune searches start cold instead of seeded from the installed distance")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist the journal WAL and profile-store snapshots here (empty = in-memory only)")
	flag.BoolVar(&o.resume, "resume", false, "recover the state dir's interrupted run; its sessions stay pollable under their old IDs")
	flag.BoolVar(&o.fresh, "fresh", false, "discard a state dir's interrupted run and start a fresh epoch (default: refuse)")
	flag.StringVar(&o.fsync, "fsync", "interval", "WAL durability: interval, always, or never")
	flag.IntVar(&o.retryAfterCap, "retry-after-cap", 30, "upper bound on the Retry-After header, in seconds")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound listen address to this file once serving (for test harnesses using port 0)")
	flag.DurationVar(&o.reqTimeout, "request-timeout", 0, "per-request context deadline for non-streaming handlers (0 = default 30s, negative = off)")
	flag.Int64Var(&o.maxBody, "max-body", 0, "max submit body size in bytes, 413 past it (0 = default 1 MiB, negative = unlimited)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed shared by the disk and network fault injectors")
	flag.Float64Var(&o.diskWrite, "chaos-disk-write", 0, "probability a WAL write fails with an injected disk fault")
	flag.Float64Var(&o.diskSync, "chaos-disk-sync", 0, "probability a WAL fsync fails with an injected disk fault")
	flag.Float64Var(&o.diskSnapshot, "chaos-disk-snapshot", 0, "probability a snapshot rewrite fails with an injected disk fault")
	flag.IntVar(&o.rearmBackoff, "rearm-backoff", 0, "journal events to wait before degraded persistence retries re-arming (0 = default 64, negative = stay degraded)")
	flag.Float64Var(&o.netDelay, "chaos-net-delay", 0, "probability a request is delayed before dispatch")
	flag.Float64Var(&o.netError, "chaos-net-error", 0, "probability a request gets an injected 500")
	flag.Float64Var(&o.netSever, "chaos-net-sever", 0, "probability a response body is severed mid-stream")
	flag.Float64Var(&o.netPanic, "chaos-net-panic", 0, "probability a handler panics (exercises panic recovery)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-fleetd:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	m, ok := rpg2.MachineByName(o.machine)
	if !ok {
		return fmt.Errorf("unknown machine %q", o.machine)
	}
	fsync, err := rpg2.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return err
	}
	if o.resume && o.stateDir == "" {
		return fmt.Errorf("-resume needs -state-dir")
	}
	// Same guard as rpg2-fleet: an interrupted run is recoverable work,
	// not scratch space — refuse to overwrite it silently.
	if o.stateDir != "" && !o.resume && !o.fresh {
		if n := rpg2.FleetPendingSessions(o.stateDir); n > 0 {
			return fmt.Errorf("state dir %q holds an interrupted run (%d unfinished sessions); pass -resume to serve it or -fresh to discard it", o.stateDir, n)
		}
	}

	var diskFaults *rpg2.DiskFaultInjector
	if o.diskWrite > 0 || o.diskSync > 0 || o.diskSnapshot > 0 {
		diskFaults = rpg2.NewDiskFaultInjector(rpg2.DiskFaultConfig{
			Seed:         o.chaosSeed,
			WriteRate:    o.diskWrite,
			SyncRate:     o.diskSync,
			SnapshotRate: o.diskSnapshot,
		})
	}
	var netFaults *rpg2.NetFaultInjector
	if o.netDelay > 0 || o.netError > 0 || o.netSever > 0 || o.netPanic > 0 {
		netFaults = rpg2.NewNetFaultInjector(rpg2.NetFaultConfig{
			Seed:      o.chaosSeed,
			DelayRate: o.netDelay,
			ErrorRate: o.netError,
			SeverRate: o.netSever,
			PanicRate: o.netPanic,
		})
	}

	srv, err := rpg2.NewFleetDaemon(rpg2.FleetDaemonConfig{
		Fleet: rpg2.FleetConfig{
			Machine:          m,
			Workers:          o.workers,
			RunSeconds:       o.seconds,
			DisableStore:     o.nostore,
			StoreShards:      o.shards,
			StoreAddr:        o.storeAddr,
			Translate:        o.translate,
			Quota:            o.quota,
			TenantQuota:      o.tenantQuota,
			MaxQueue:         o.maxQueue,
			MaxTenantQueue:   o.tenantQueue,
			MaxRetries:       o.retries,
			BreakerThreshold: o.breaker,
			StateDir:         o.stateDir,
			Fsync:            fsync,
			Overwrite:        o.fresh,

			WatchdogInterval:   o.watchdog,
			WatchdogWindow:     o.wdWindow,
			WatchdogThreshold:  o.wdThresh,
			WatchdogHysteresis: o.wdHyst,
			MaxRetunes:         o.retunes,
			RetuneDelay:        o.retuneWait,
			RetuneCold:         o.retuneCold,

			DiskFaults:   diskFaults,
			RearmBackoff: o.rearmBackoff,
		},
		Resume:         o.resume,
		RetryAfterCap:  o.retryAfterCap,
		NetFaults:      netFaults,
		RequestTimeout: o.reqTimeout,
		MaxBodyBytes:   o.maxBody,
	})
	if err != nil {
		return err
	}
	if rec := srv.Recovery(); rec != nil {
		fmt.Println(rec.Summary())
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("rpg2-fleetd: serving on http://%s (machine %s)\n", ln.Addr(), m.Name)
	if o.addrFile != "" {
		// Write-then-rename so a watching parent never reads a torn file.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return err
		}
	}

	httpSrv := srv.HTTPServer()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		signal.Stop(sigc) // a second signal kills the process normally
		fmt.Fprintf(os.Stderr, "rpg2-fleetd: %v: draining (in-flight sessions finish, queued cancel)\n", sig)
	}

	// Drain first — event streams deliver everything and end, queued
	// sessions journal as cancelled, the WAL flushes — then close the
	// HTTP listener.
	st := srv.Drain()
	httpSrv.Close()
	snap := srv.Fleet().Snapshot()
	fmt.Printf("rpg2-fleetd: drained: %d queued cancelled, %d completed, %d failed\n",
		st.Cancelled, snap.Completed, snap.Failed)
	return nil
}
