// Command rpg2-sweep measures the offline prefetch-distance sweep for one
// benchmark/input/machine combination: the steady-state speedup of every
// distance over the no-prefetch baseline, plus the sensitivity class the
// curve falls into (the taxonomy of the paper's Table 3).
//
// Usage:
//
//	rpg2-sweep -bench sssp -input gowalla-like -machine haswell -step 1
package main

import (
	"flag"
	"fmt"
	"os"

	"rpg2"
	"rpg2/internal/stats"
)

func main() {
	bench := flag.String("bench", "sssp", "benchmark name")
	input := flag.String("input", "soc-alpha", "graph input (CRONO benchmarks)")
	machineName := flag.String("machine", "haswell", "machine: cascadelake or haswell")
	step := flag.Int("step", 1, "distance stride across [1,100]")
	maxD := flag.Int("max", 100, "largest distance to measure")
	flag.Parse()

	if err := run(*bench, *input, *machineName, *step, *maxD); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-sweep:", err)
		os.Exit(1)
	}
}

func run(bench, input, machineName string, step, maxD int) error {
	m, ok := rpg2.MachineByName(machineName)
	if !ok {
		return fmt.Errorf("unknown machine %q", machineName)
	}
	if bench == "is" || bench == "cg" || bench == "randacc" {
		input = ""
	}
	cfg := rpg2.DefaultSweep()
	cfg.Distances = cfg.Distances[:0]
	for d := 1; d <= maxD; d += step {
		cfg.Distances = append(cfg.Distances, d)
	}
	sw, err := rpg2.RunSweep(bench, input, m, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("# %s/%s on %s — speedup over no-prefetch baseline\n", bench, input, m.Name)
	fmt.Println("distance speedup")
	for i, d := range sw.Distances {
		fmt.Printf("%8d %7.3f\n", d, sw.Speedup[i])
	}
	best, bs := sw.Best()
	fmt.Printf("# best: d=%d (%.3fx)\n", best, bs)
	fmt.Printf("# class: %v\n", stats.Classify(sw.Distances, sw.Speedup))
	return nil
}
