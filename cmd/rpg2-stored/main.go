// Command rpg2-stored serves a shared profile store over HTTP: the
// out-of-process backend several rpg2-fleet/rpg2-fleetd processes on one
// machine type point -store-addr at, so warm profiles committed by one
// fleet seed sessions in another. Generations live here, which is what
// lets cross-process commit races resolve exactly like in-process ones.
//
// Usage:
//
//	rpg2-stored -listen 127.0.0.1:8049 -store-shards 8
//	rpg2-stored -listen :8049 -state-dir ./store-state -fsync always
//	rpg2-stored -listen :8049 -state-dir ./store-state -fresh
//
// With -state-dir the store is crash-safe: mutations journal to a
// checksummed WAL and the whole store snapshots atomically every
// -snapshot-every mutations; a restart recovers the fold of the two. A
// disk failure degrades persistence (the daemon keeps serving from
// memory, the stats endpoint reports it) instead of dropping requests.
//
// SIGINT/SIGTERM triggers a graceful drain: store requests get 503, a
// final snapshot lands, the WAL closes, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rpg2"
)

type options struct {
	listen   string
	shards   int
	maxReuse int

	stateDir string
	fresh    bool
	fsync    string
	snapshot int

	addrFile   string
	reqTimeout time.Duration
	maxBody    int64
}

func main() {
	var o options
	flag.StringVar(&o.listen, "listen", "127.0.0.1:8049", "address to serve the store API on")
	flag.IntVar(&o.shards, "store-shards", 0, "shard the store by (bench, input) hash across this many locks (0/1 = single-shard)")
	flag.IntVar(&o.maxReuse, "max-reuse", 0, "serves per committed entry before it goes stale (0 = default 16)")
	flag.StringVar(&o.stateDir, "state-dir", "", "persist the op journal and snapshots here (empty = in-memory only)")
	flag.BoolVar(&o.fresh, "fresh", false, "discard the state dir's prior contents instead of recovering them")
	flag.StringVar(&o.fsync, "fsync", "interval", "WAL durability: interval, always, or never")
	flag.IntVar(&o.snapshot, "snapshot-every", 0, "journaled mutations between snapshots (0 = default 256, negative = journal only)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound listen address to this file once serving (for test harnesses using port 0)")
	flag.DurationVar(&o.reqTimeout, "request-timeout", 0, "per-request context deadline (0 = default 30s, negative = off)")
	flag.Int64Var(&o.maxBody, "max-body", 0, "max request body size in bytes, 413 past it (0 = default 1 MiB, negative = unlimited)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "rpg2-stored:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	fsync, err := rpg2.ParseFsyncPolicy(o.fsync)
	if err != nil {
		return err
	}
	srv, err := rpg2.NewStoreDaemon(rpg2.StoreDaemonConfig{
		Store:          rpg2.StoreConfig{MaxReuse: o.maxReuse},
		Shards:         o.shards,
		StateDir:       o.stateDir,
		Fresh:          o.fresh,
		Fsync:          fsync,
		SnapshotEvery:  o.snapshot,
		RequestTimeout: o.reqTimeout,
		MaxBodyBytes:   o.maxBody,
	})
	if err != nil {
		return err
	}
	if n := srv.Recovered(); n > 0 {
		fmt.Printf("rpg2-stored: recovered %d entries from %s\n", n, o.stateDir)
	}

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	fmt.Printf("rpg2-stored: serving on http://%s (%d shards)\n", ln.Addr(), srv.Store().Shards())
	if o.addrFile != "" {
		// Write-then-rename so a watching parent never reads a torn file.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return err
		}
	}

	httpSrv := srv.HTTPServer()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		signal.Stop(sigc) // a second signal kills the process normally
		fmt.Fprintf(os.Stderr, "rpg2-stored: %v: draining (final snapshot, WAL close)\n", sig)
	}

	st := srv.Drain()
	httpSrv.Close()
	if msg, bad := srv.Degraded(); bad {
		fmt.Fprintf(os.Stderr, "rpg2-stored: persistence degraded: %s\n", msg)
	}
	fmt.Printf("rpg2-stored: drained: %d entries live, snapshotted %v\n", st.Entries, st.Snapshotted)
	return nil
}
