// Package rpg2 is the public API of the RPG² reproduction: robust
// profile-guided runtime prefetch generation (ASPLOS 2024) rebuilt, together
// with its entire machine substrate, as a pure-Go simulation.
//
// The library has three layers, all reachable from this facade:
//
//   - A simulated machine: a small ISA, an interpreter core with a
//     cycle-accounting model, a three-level cache hierarchy with a hardware
//     stride prefetcher and a bandwidth-bounded DRAM model, processes with a
//     ptrace-style tracer, and PEBS-style profiling. Two machine
//     configurations mirror the paper's Cascade Lake and Haswell servers.
//   - The RPG² system itself: online profiling, a BOLT-style binary rewriter
//     whose InjectPrefetchPass builds prefetch kernels from backward slices,
//     runtime code injection with on-stack replacement, three-stage prefetch
//     distance tuning, and rollback when prefetching hurts.
//   - The evaluation: the CRONO and AJ benchmarks as simulated programs, the
//     offline/APT-GET/manual baselines, and one runner per table and figure
//     of the paper's evaluation section.
//
// Quickstart:
//
//	m := rpg2.CascadeLake()
//	w, _ := rpg2.BuildWorkload("pr", "soc-alpha")
//	p, _ := rpg2.Launch(m, w)
//	report, _ := rpg2.Optimize(m, p, rpg2.Config{Seed: 1})
//	fmt.Println(report.Outcome, report.FinalDistance)
package rpg2

import (
	"rpg2/internal/baselines"
	"rpg2/internal/cpu"
	"rpg2/internal/experiments"
	"rpg2/internal/faults"
	"rpg2/internal/fleet"
	"rpg2/internal/fleetclient"
	"rpg2/internal/fleetd"
	"rpg2/internal/graphs"
	"rpg2/internal/machine"
	"rpg2/internal/perf"
	"rpg2/internal/proc"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/store"
	"rpg2/internal/store/remote"
	"rpg2/internal/stored"
	"rpg2/internal/wal"
	"rpg2/internal/workloads"
)

// Machine is a simulated server configuration.
type Machine = machine.Machine

// CascadeLake returns the simulated Intel Xeon Gold 6230R configuration.
func CascadeLake() Machine { return machine.CascadeLake() }

// Haswell returns the simulated Intel Xeon E5-2618L v3 configuration.
func Haswell() Machine { return machine.Haswell() }

// Machines returns both evaluation machines.
func Machines() []Machine { return machine.Both() }

// MachineByName resolves "cascadelake" or "haswell".
func MachineByName(name string) (Machine, bool) { return machine.ByName(name) }

// Workload is a runnable benchmark: binary plus data setup.
type Workload = workloads.Workload

// Benchmarks lists the available benchmark names (CRONO then AJ).
func Benchmarks() []string { return workloads.AllNames() }

// DriftBenchmarks lists the drifting benchmarks — workloads whose access
// pattern shifts mid-run, the targets of the fleet's phase-drift
// watchdog. They are not in Benchmarks: stock sweeps stay byte-identical;
// callers opt in by name.
func DriftBenchmarks() []string { return workloads.DriftNames() }

// GraphInput describes one catalogue graph input.
type GraphInput = graphs.Input

// GraphInputs returns the SNAP-like input catalogue used by pr, bfs and
// sssp.
func GraphInputs() []GraphInput { return graphs.Catalogue() }

// SyntheticInputs returns the APT-GET-style synthetic inputs (bc's inputs).
func SyntheticInputs() []GraphInput { return graphs.SyntheticCatalogue() }

// BuildWorkload constructs a benchmark. input names a catalogue graph for
// the CRONO benchmarks (pr, bfs, sssp, bc) and must be empty for the AJ
// benchmarks (is, cg, randacc), which carry fixed inputs.
func BuildWorkload(bench, input string) (*Workload, error) {
	return workloads.Build(bench, input, 1<<30)
}

// WorkloadCache is a concurrency-safe build cache for workloads, keyed on
// (benchmark, input, repeats). Fleets and the experiments harness layer on
// it so the same graph is constructed once per process and shared immutably
// across sessions.
type WorkloadCache = workloads.BuildCache

// NewWorkloadCache builds an empty, private workload build cache.
func NewWorkloadCache() *WorkloadCache { return workloads.NewBuildCache() }

// SharedWorkloadCache returns the process-wide workload build cache that
// fleets use by default.
func SharedWorkloadCache() *WorkloadCache { return workloads.SharedCache() }

// Process is a running simulated program.
type Process = proc.Process

// Launch starts a workload on a fresh instance of the machine.
func Launch(m Machine, w *Workload) (*Process, error) {
	return m.Launch(w.Bin, w.Setup)
}

// LaunchParallel starts a data-parallel workload with the given number of
// threads, each owning a shard of the iteration space and all contending
// for the socket's shared LLC and DRAM bandwidth. Only the flat-loop
// benchmarks (pr, sssp, is, cg, randacc) support this.
func LaunchParallel(m Machine, w *Workload, threads int) (*Process, error) {
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		return nil, err
	}
	if err := w.SpawnWorkers(p, threads); err != nil {
		return nil, err
	}
	return p, nil
}

// WorkCounter counts retirements of a set of instructions; see WatchWork.
type WorkCounter = cpu.Watch

// WatchWork attaches a work counter over the workload's marked miss-site
// load to a freshly launched process, so throughput can be compared across
// schemes. If RPG² later rewrites the code, it extends the counter across
// the version switch automatically.
func WatchWork(p *Process, w *Workload) *WorkCounter {
	return perf.AttachWatch(p, []int{w.WorkPC})
}

// Config tunes the RPG² controller; the zero value uses the paper's
// defaults (2 s profiling, 0.3 s IPC windows, distances capped at 200).
type Config = rpgcore.Config

// Report is the controller's account of one optimization session.
type Report = rpgcore.Report

// Measurement is a steady-state tail measurement of a running workload:
// retired work, IPC, work rate, LLC MPKI and instructions per unit of work.
type Measurement = rpgcore.Measurement

// Outcome summarises what RPG² did to a target.
type Outcome = rpgcore.Outcome

// Controller outcomes.
const (
	// NotActivated: too little profiling signal; target untouched.
	NotActivated = rpgcore.NotActivated
	// Tuned: prefetching injected and a beneficial distance installed.
	Tuned = rpgcore.Tuned
	// RolledBack: prefetching hurt; execution steered back to f0.
	RolledBack = rpgcore.RolledBack
	// TargetExited: the target finished before optimization completed.
	TargetExited = rpgcore.TargetExited
)

// Optimize attaches RPG² to a running process and drives all four phases:
// profiling, code generation, runtime insertion with on-stack replacement,
// and distance tuning with rollback. The process continues running after
// detach.
func Optimize(m Machine, p *Process, cfg Config) (*Report, error) {
	return rpgcore.New(m, cfg).Optimize(p)
}

// Sweep is an offline distance sweep: per-distance speedup over the
// no-prefetch baseline.
type Sweep = baselines.Sweep

// SweepConfig controls RunSweep.
type SweepConfig = baselines.SweepConfig

// DefaultSweep measures distances 1..100 like the paper's offline scheme.
func DefaultSweep() SweepConfig { return baselines.DefaultSweep() }

// RunSweep measures the steady-state speedup of each candidate prefetch
// distance for a benchmark/input on a machine.
func RunSweep(bench, input string, m Machine, cfg SweepConfig) (*Sweep, error) {
	return baselines.RunSweep(bench, input, m, cfg)
}

// ExperimentOptions configures the evaluation harness scale.
type ExperimentOptions = experiments.Options

// Experiments is the harness that regenerates the paper's tables and
// figures.
type Experiments = experiments.Runner

// DefaultExperiments returns the full-scale harness configuration.
func DefaultExperiments() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperiments returns a reduced configuration for smoke runs.
func QuickExperiments() ExperimentOptions { return experiments.QuickOptions() }

// SmokeExperiments returns the smallest useful configuration: two tiny
// inputs, one trial, short runs. CI uses it to exercise the whole pipeline
// in seconds.
func SmokeExperiments() ExperimentOptions { return experiments.SmokeOptions() }

// NewExperiments builds the harness.
func NewExperiments(opts ExperimentOptions) *Experiments { return experiments.NewRunner(opts) }

// FleetConfig tunes a Fleet; Machine is required, everything else has
// defaults (Workers: GOMAXPROCS).
type FleetConfig = fleet.Config

// Fleet runs RPG² as a long-lived service over many target processes
// concurrently: an admission queue feeds a bounded worker pool, each
// session walks a lifecycle state machine, and a shared profile store
// warm-starts sessions on workloads the fleet has tuned before.
type Fleet = fleet.Fleet

// FleetSession is one tracked optimization within a fleet.
type FleetSession = fleet.Session

// SessionSpec names one unit of fleet work.
type SessionSpec = fleet.SessionSpec

// FleetSnapshot is a point-in-time view of fleet-wide metrics.
type FleetSnapshot = fleet.Snapshot

// FleetEvent is one record on a fleet's journal.
type FleetEvent = fleet.Event

// ProfileStore caches candidate sites and tuned distances per (benchmark,
// input, machine), with bounded reuse and regression-driven invalidation.
// It is an interface (internal/store.Store) with two implementations: a
// single-mutex in-memory map and an N-way sharded variant that splits
// lookup/commit contention by an FNV hash of (bench, input).
type ProfileStore = fleet.Store

// NewProfileStore builds an empty single-shard profile store with the
// default reuse policy, shareable across fleets via FleetConfig.Store.
func NewProfileStore() ProfileStore { return fleet.NewStore(fleet.StoreConfig{}) }

// NewShardedProfileStore builds a profile store sharded across n
// independently locked shards (n <= 1 falls back to the single-shard
// store). The shard key excludes the machine axis, so cross-machine
// translation lookups never cross shards. Equivalent to setting
// FleetConfig.StoreShards when the fleet owns its store.
func NewShardedProfileStore(n int) ProfileStore {
	return store.New(store.Config{}, n)
}

// StoreConfig tunes a profile store's reuse policy (MaxReuse serves per
// committed entry before it goes stale; 0 = default 16).
type StoreConfig = store.Config

// StoreDaemonConfig tunes a shared store daemon: the wrapped store's
// policy and shard layout, plus optional WAL persistence under StateDir.
type StoreDaemonConfig = stored.Config

// StoreDaemon is the out-of-process profile store (rpg2-stored): any
// ProfileStore behind an HTTP/JSON API, one endpoint per Store method,
// shareable by several fleet processes via FleetConfig.StoreAddr.
// Generations live in the daemon, so cross-process commit races resolve
// exactly like in-process ones. Serve its Handler and stop with Drain.
type StoreDaemon = stored.Server

// NewStoreDaemon builds a store daemon — over recovered contents when
// cfg.StateDir holds prior state.
func NewStoreDaemon(cfg StoreDaemonConfig) (*StoreDaemon, error) { return stored.New(cfg) }

// RemoteStoreConfig points a remote profile store at a store daemon.
type RemoteStoreConfig = remote.Config

// RemoteProfileStore is a ProfileStore that forwards every operation to
// an rpg2-stored daemon, retrying transient failures and degrading
// permanently to a process-local fallback when the daemon is gone.
// FleetConfig.StoreAddr builds one implicitly; construct explicitly to
// tune retries or share a fallback.
type RemoteProfileStore = remote.Client

// NewRemoteStore builds a remote profile store client. The daemon is not
// contacted until first use.
func NewRemoteStore(cfg RemoteStoreConfig) *RemoteProfileStore { return remote.New(cfg) }

// TranslateDistance scales a prefetch distance tuned on machine src into a
// starting hypothesis for machine dst, by the ratio of the machines'
// effective memory latencies, rounded and clamped to [1, maxDistance] —
// the scaling the fleet's FleetConfig.Translate seeding tier applies to
// cross-machine profile transplants.
func TranslateDistance(src, dst Machine, d, maxDistance int) int {
	return fleet.TranslateDistance(src, dst, d, maxDistance)
}

// NewFleet starts a fleet service; its worker pool is live immediately.
// Submit sessions (or batch them with Run), Drain, read Snapshot, Close.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.New(cfg) }

// FleetState is a fleet session's lifecycle state.
type FleetState = fleet.State

// Fleet session lifecycle states. Sessions move Queued → Profiling →
// Rewriting → Tuning and end in one of the four terminal states.
const (
	// SessionQueued: admitted, waiting for a worker (or for a retry's
	// backoff to elapse).
	SessionQueued = fleet.Queued
	// SessionProfiling through SessionTuning track the controller phases.
	SessionProfiling = fleet.Profiling
	SessionRewriting = fleet.Rewriting
	SessionTuning    = fleet.Tuning
	// SessionDone: the controller finished (any rpg2 Outcome, incl. a
	// rollback that exhausted its retry budget).
	SessionDone = fleet.Done
	// SessionRolledBack: prefetching hurt and was rolled back terminally.
	SessionRolledBack = fleet.RolledBack
	// SessionFailed: the session errored (launch failure, injected fault
	// past the retry budget, or cancellation).
	SessionFailed = fleet.Failed
	// SessionDegraded: an open circuit breaker parked the session without
	// running it.
	SessionDegraded = fleet.Degraded
)

// ErrFleetClosed is returned by Fleet.Submit after Close: the pool is
// shutting down and accepts no new work. Test with errors.Is.
var ErrFleetClosed = fleet.ErrClosed

// ErrSessionCanceled marks sessions evicted from the admission queue by
// Fleet.CancelQueued (graceful shutdown) before ever dispatching.
var ErrSessionCanceled = fleet.ErrCanceled

// FsyncPolicy selects the WAL durability policy for a persisted fleet
// (FleetConfig.Fsync).
type FsyncPolicy = wal.SyncMode

// WAL durability policies.
const (
	// FsyncInterval (the default) fsyncs every FleetConfig.FsyncInterval
	// appends and on close.
	FsyncInterval = wal.SyncInterval
	// FsyncAlways fsyncs every append: maximum durability, one disk round
	// trip per journal event.
	FsyncAlways = wal.SyncAlways
	// FsyncOnClose fsyncs only on close: the OS decides what a crash keeps.
	FsyncOnClose = wal.SyncOnClose
)

// ParseFsyncPolicy resolves "interval", "always", or "never"/"onclose".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParseSyncMode(s) }

// WALSalvage reports what WAL recovery kept and dropped from a damaged
// state file.
type WALSalvage = wal.Salvage

// FleetRecovery is Fleet recovery's account of what it rebuilt: salvage
// reports, session accounting, and the re-admitted session handles.
type FleetRecovery = fleet.Recovery

// RecoverFleet rebuilds a crashed (or cleanly closed) fleet from its state
// dir: the profile store, the scheduler's breaker/retry/quota posture, and
// every session that was queued or in flight when the process died — the
// latter re-admitted (an interrupted in-flight attempt re-runs cold with a
// derived seed). The returned fleet is live; Drain it to finish the
// recovered work.
func RecoverFleet(stateDir string, cfg FleetConfig) (*Fleet, *FleetRecovery, error) {
	return fleet.Recover(stateDir, cfg)
}

// FleetPendingSessions reports how many sessions a fleet state dir's
// journal left unfinished — the work RecoverFleet would re-admit, and
// what NewFleet refuses to discard unless FleetConfig.Overwrite is set.
// A missing or empty state dir reports zero.
func FleetPendingSessions(stateDir string) int { return fleet.PendingSessions(stateDir) }

// ErrFleetOverloaded matches (via errors.Is) Fleet.Submit's backpressure
// rejections when FleetConfig.MaxQueue or MaxTenantQueue is hit; the
// concrete error is a *FleetOverloadError naming the tripped cap. The
// daemon maps it to HTTP 429 with a Retry-After header.
var ErrFleetOverloaded = fleet.ErrOverloaded

// FleetOverloadError details a backpressure rejection: which scope
// ("global" or "tenant") tripped, at what depth, against which cap.
type FleetOverloadError = fleet.OverloadError

// SessionRecord is the JSON-safe wire/WAL projection of a SessionSpec —
// what the daemon's submit endpoint accepts and crash recovery replays.
// Convert with RecordSpec and SessionRecord.Spec.
type SessionRecord = fleet.SpecRecord

// RecordSpec projects a SessionSpec into its wire/WAL form.
func RecordSpec(spec SessionSpec) *SessionRecord { return fleet.RecordSpec(spec) }

// FleetDaemonConfig tunes a fleet daemon: the wrapped fleet's config plus
// resume and Retry-After policy.
type FleetDaemonConfig = fleetd.Config

// FleetDaemon is the networked fleet: one Fleet behind an HTTP/JSON API —
// session submission with per-tenant backpressure, polling, result fetch,
// read-only store lookups, a metrics snapshot, and a resumable NDJSON
// journal stream. Serve its Handler and stop with Drain.
type FleetDaemon = fleetd.Server

// NewFleetDaemon starts a daemon over a fresh fleet — or, with
// cfg.Resume, over a fleet recovered from cfg.Fleet.StateDir.
func NewFleetDaemon(cfg FleetDaemonConfig) (*FleetDaemon, error) { return fleetd.New(cfg) }

// SessionStatus is the daemon's poll view of one session.
type SessionStatus = fleetd.Status

// SessionOutcome is a terminal session's wire result — free of wall-clock
// times and IDs, so the same spec and seed yield byte-identical JSON
// in-process and through the daemon.
type SessionOutcome = fleetd.Outcome

// SessionOutcomeOf distils a fleet session's terminal result into the
// wire form the daemon serves.
func SessionOutcomeOf(s *FleetSession) SessionOutcome { return fleetd.OutcomeOf(s) }

// FleetClientConfig points a client at a daemon (BaseURL required).
type FleetClientConfig = fleetclient.Config

// FleetClient is the thin consumer of a fleet daemon: submit, poll, wait,
// fetch, store lookups, and the resumable event stream, with capped
// exponential retry on transient failures.
type FleetClient = fleetclient.Client

// NewFleetClient builds a client; zero-value config fields get defaults.
func NewFleetClient(cfg FleetClientConfig) *FleetClient { return fleetclient.New(cfg) }

// FleetKey addresses one profile-store entry: (benchmark, input, machine).
type FleetKey = fleet.Key

// FleetLookupResult is a remote store lookup's answer; Source names the
// sibling machine a translated hit was seeded from.
type FleetLookupResult = fleetclient.LookupResult

// FleetClientOverloaded is the client-side face of a 429 backpressure
// rejection, carrying the daemon's Retry-After hint.
type FleetClientOverloaded = fleetclient.Overloaded

// ErrFleetNotFound matches (via errors.Is) a daemon 404 — unknown session
// ID or a store lookup with no entry.
var ErrFleetNotFound = fleetclient.ErrNotFound

// FaultStage names an injection boundary inside the controller:
// "profile" (sample collection), "rewrite" (the BOLT pass), or "osr"
// (runtime code insertion / on-stack replacement).
type FaultStage = faults.Stage

// Fault-injection boundaries.
const (
	FaultProfile = faults.StageProfile
	FaultRewrite = faults.StageRewrite
	FaultOSR     = faults.StageOSR
)

// FaultConfig seeds a deterministic fault injector.
type FaultConfig = faults.Config

// FaultInjector decides, purely from (seed, session, attempt, stage),
// whether a controller stage fails. Plug one into FleetConfig.Faults to
// exercise the fleet's retry lane and circuit breakers reproducibly.
type FaultInjector = faults.Injector

// NewFaultInjector builds an injector from a seeded config.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg) }

// IsInjectedFault reports whether an error (e.g. FleetSession.Err) was
// manufactured by a fault injector rather than arising organically.
func IsInjectedFault(err error) bool { return faults.Injected(err) }

// DiskFaultConfig seeds a deterministic disk fault injector: per-op
// failure rates for WAL writes, fsyncs, and snapshot rewrites, plus a
// torn-tail byte budget for simulated crashes.
type DiskFaultConfig = faults.DiskConfig

// DiskFaultInjector decides, purely from (seed, file key, op ordinal),
// whether a persistence operation fails. Plug one into
// FleetConfig.DiskFaults to exercise degradation and self-healing re-arm
// reproducibly.
type DiskFaultInjector = faults.DiskInjector

// NewDiskFaultInjector builds a disk fault injector from a seeded config.
func NewDiskFaultInjector(cfg DiskFaultConfig) *DiskFaultInjector { return faults.NewDisk(cfg) }

// IsInjectedDiskFault reports whether an error was manufactured by a disk
// fault injector rather than arising from the real filesystem.
func IsInjectedDiskFault(err error) bool { return faults.InjectedDisk(err) }

// NetFaultConfig seeds a deterministic network fault injector: rates for
// delays, injected errors/500s, responses severed mid-body, and handler
// panics, keyed by (seed, route, request ordinal).
type NetFaultConfig = faults.NetConfig

// NetFaultInjector draws at most one network fault per request. Plug one
// into FleetDaemonConfig.NetFaults for daemon-side injection, or wrap a
// client transport with its Transport method for client-side injection.
type NetFaultInjector = faults.NetInjector

// NewNetFaultInjector builds a network fault injector from a seeded config.
func NewNetFaultInjector(cfg NetFaultConfig) *NetFaultInjector { return faults.NewNet(cfg) }

// IsInjectedNetFault reports whether an error was manufactured by a
// network fault injector rather than arising from the real network.
func IsInjectedNetFault(err error) bool { return faults.InjectedNet(err) }
