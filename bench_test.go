// Benchmarks regenerating every table and figure of the RPG² paper's
// evaluation section (§4), plus ablations of the design choices DESIGN.md
// calls out. Each benchmark prints the reproduced rows/series through the
// experiment renderers (visible with `go test -bench=. -v` or in the
// benchmark log) and reports headline numbers as benchmark metrics.
//
// Scale: benchmarks run at a reduced-but-representative scale (a subset of
// inputs, shorter runs) so the full suite finishes in minutes; the
// rpg2-experiments command regenerates everything at full scale.
package rpg2_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"rpg2"
	"rpg2/internal/baselines"
	"rpg2/internal/bolt"
	"rpg2/internal/experiments"
	"rpg2/internal/graphs"
	"rpg2/internal/machine"
	"rpg2/internal/perf"
	rpgcore "rpg2/internal/rpg2"
	"rpg2/internal/stats"
	"rpg2/internal/store"
	"rpg2/internal/workloads"
)

// benchRunner is shared across benchmarks so profiles and sweeps computed
// for one figure are reused by the next.
var (
	benchOnce   sync.Once
	benchShared *experiments.Runner
)

func benchOptions() experiments.Options {
	o := experiments.QuickOptions()
	o.CRONOInputs = graphs.Catalogue()[:8]
	o.SynthInputs = graphs.SyntheticCatalogue()[:3]
	o.RunSeconds = 30
	o.Trials = 2
	ds := make([]int, 0, 50)
	for d := 1; d <= 100; d += 2 {
		ds = append(ds, d)
	}
	o.Sweep.Distances = ds
	o.Seed = 42
	return o
}

func runner() *experiments.Runner {
	benchOnce.Do(func() { benchShared = experiments.NewRunner(benchOptions()) })
	return benchShared
}

// emit renders a result to stderr so bench logs carry the reproduced rows.
func emit(b *testing.B, render func(io.Writer)) {
	b.Helper()
	fmt.Fprintf(os.Stderr, "\n===== %s =====\n", b.Name())
	render(os.Stderr)
}

func BenchmarkFig1DistanceSweepSSSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
			spread := optimaSpread(res)
			b.ReportMetric(spread, "optima-spread")
		}
	}
}

// optimaSpread measures how far apart per-input best distances are — the
// phenomenon Figure 1 exists to show.
func optimaSpread(cs *experiments.CurveSet) float64 {
	lo, hi := 1<<30, 0
	for _, c := range cs.Curves {
		best, bestV := 0, 0.0
		for i, v := range c.Speedup {
			if v > bestV {
				best, bestV = c.Distances[i], v
			}
		}
		if best < lo {
			lo = best
		}
		if best > hi {
			hi = best
		}
	}
	return float64(hi - lo)
}

func BenchmarkFig2AsymptoticCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkFig3MicroarchSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkFig7MainPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig7(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
			// Headline metrics: the best RPG² speedup anywhere, and the
			// worst RPG² outcome (robustness: should stay near 1.0).
			best, worst := 0.0, 10.0
			for _, p := range res.Pairs {
				if p.Err != nil {
					continue
				}
				if s := p.Speedup[experiments.SchemeRPG2]; s > best {
					best = s
				}
				if s := p.Speedup[experiments.SchemeRPG2]; s > 0 && s < worst {
					worst = s
				}
			}
			b.ReportMetric(best, "best-speedup")
			b.ReportMetric(worst, "worst-speedup")
		}
	}
}

func BenchmarkFig8SearchAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig8(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
			within := 0
			for j, c := range res.Counts {
				if j < 2 {
					within += c
				}
			}
			if n := len(res.Deltas); n > 0 {
				b.ReportMetric(100*float64(within)/float64(n), "pct-within-10")
			}
		}
	}
}

func BenchmarkFig9ProfilingSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkFig10IPCTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig10("soc-alpha", "bitcoinalpha-like")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkFig11MPKIScatter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig11()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkFig12InstructionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig12()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
			b.ReportMetric(100*stats.Mean(res.Overheads), "mean-overhead-pct")
		}
	}
}

func BenchmarkFig13AsymmetricDistances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Fig13("soc-alpha")
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkTable1AccessCategories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

func BenchmarkTable2Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
			var edits, edit float64
			for _, row := range res.Rows {
				edits += float64(row.Costs.PDEdits)
				edit += 1000 * row.Costs.PDEditSeconds
			}
			b.ReportMetric(edit/float64(len(res.Rows)), "pd-edit-ms")
		}
	}
}

func BenchmarkTable3SensitivityTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().Table3(nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
		}
	}
}

// BenchmarkTableTransplant runs the cross-machine transplant study on a
// benchmark subset: the translated tier must tune with fewer measurement
// windows than a cold search on every comparable cell.
func BenchmarkTableTransplant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := runner().TableTransplant([]string{"pr", "is"})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			emit(b, res.Render)
			coldW, transW, n := 0.0, 0.0, 0
			for _, row := range res.Rows {
				if !row.Comparable {
					continue
				}
				coldW += row.Cold.Windows
				transW += row.Translated.Windows
				n++
			}
			if n > 0 {
				b.ReportMetric(coldW/float64(n), "cold-windows")
				b.ReportMetric(transW/float64(n), "translated-windows")
			}
		}
	}
}

// ---- Ablations of design choices (DESIGN.md §4) ------------------------

// BenchmarkAblationMetricMPKI contrasts tuning on IPC-style work rate vs
// LLC-MPKI, reproducing §4.4's finding that MPKI carries almost no tuning
// signal.
func BenchmarkAblationMetricMPKI(b *testing.B) {
	m := machine.CascadeLake()
	for i := 0; i < b.N; i++ {
		rateRep := mustOptimize(b, m, "pr", "soc-alpha", rpg2.Config{Seed: 1})
		mpkiRep := mustOptimize(b, m, "pr", "soc-alpha", rpg2.Config{Seed: 1, UseMPKIMetric: true})
		if i == b.N-1 {
			fmt.Fprintf(os.Stderr, "\n===== %s =====\nrate metric: d=%d; MPKI metric: d=%d\n",
				b.Name(), rateRep.FinalDistance, mpkiRep.FinalDistance)
			b.ReportMetric(float64(rateRep.FinalDistance), "rate-distance")
			b.ReportMetric(float64(mpkiRep.FinalDistance), "mpki-distance")
		}
	}
}

// BenchmarkAblationSearchStrategy compares the paper's three-stage search
// against a linear scan: quality of the found distance vs number of edits.
func BenchmarkAblationSearchStrategy(b *testing.B) {
	m := machine.CascadeLake()
	for i := 0; i < b.N; i++ {
		staged := mustOptimize(b, m, "cg", "", rpg2.Config{Seed: 2})
		linear := mustOptimize(b, m, "cg", "", rpg2.Config{Seed: 2, LinearSearch: true})
		if i == b.N-1 {
			fmt.Fprintf(os.Stderr, "\n===== %s =====\n3-stage: d=%d in %d edits; linear: d=%d in %d edits\n",
				b.Name(), staged.FinalDistance, staged.Costs.PDEdits,
				linear.FinalDistance, linear.Costs.PDEdits)
			b.ReportMetric(float64(staged.Costs.PDEdits), "staged-edits")
			b.ReportMetric(float64(linear.Costs.PDEdits), "linear-edits")
		}
	}
}

// BenchmarkAblationRollback quantifies the robustness contribution: the
// throughput an LLC-resident input keeps with rollback enabled vs disabled.
func BenchmarkAblationRollback(b *testing.B) {
	m := machine.CascadeLake()
	const input = "as20000102-like"
	for i := 0; i < b.N; i++ {
		base := throughputWith(b, m, input, nil)
		with := throughputWith(b, m, input, &rpg2.Config{Seed: 3, MinSamples: 10})
		without := throughputWith(b, m, input, &rpg2.Config{Seed: 3, MinSamples: 10, DisableRollback: true})
		if i == b.N-1 {
			fmt.Fprintf(os.Stderr, "\n===== %s =====\nrollback keeps %.1f%% of baseline; disabled keeps %.1f%%\n",
				b.Name(), 100*with/base, 100*without/base)
			b.ReportMetric(100*with/base, "with-rollback-pct")
			b.ReportMetric(100*without/base, "without-rollback-pct")
		}
	}
}

// BenchmarkAblationKernelPlacement compares outer- vs inner-loop kernel
// placement for the a[f(b[i]+j)] category on bc (§3.2.1).
func BenchmarkAblationKernelPlacement(b *testing.B) {
	m := machine.CascadeLake()
	for i := 0; i < b.N; i++ {
		outer := placementSpeedup(b, m, false)
		inner := placementSpeedup(b, m, true)
		if i == b.N-1 {
			fmt.Fprintf(os.Stderr, "\n===== %s =====\nouter placement %.2fx, inner placement %.2fx\n",
				b.Name(), outer, inner)
			b.ReportMetric(outer, "outer-speedup")
			b.ReportMetric(inner, "inner-speedup")
		}
	}
}

// ---- store contention ----------------------------------------------------

// storeOpsPerSecond drives the warm-start mix (lookup; commit on miss;
// occasional refund) against st from `workers` goroutines over a shared
// key population, and reports aggregate operations per wall-clock second.
// The same mix backs BenchmarkStoreContention and the trajectory point.
func storeOpsPerSecond(st store.Store, workers, opsPerWorker int) float64 {
	keys := make([]store.Key, 64)
	for i := range keys {
		keys[i] = store.Key{
			Bench:   fmt.Sprintf("bench%d", i%16),
			Input:   fmt.Sprintf("input%d", i/16),
			Machine: "clx",
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPerWorker; i++ {
				k := keys[(w*31+i)%len(keys)]
				_, gen, ok := st.Lookup(k)
				if !ok {
					st.Commit(k, store.Entry{Distance: i%64 + 1})
					continue
				}
				if i%64 == 0 {
					st.Refund(k, gen)
				}
			}
		}(w)
	}
	wg.Wait()
	return float64(workers*opsPerWorker) / time.Since(start).Seconds()
}

// BenchmarkStoreContention contrasts the single-mutex Memory store with the
// 8-way Sharded store under the same warm-start mix at 8 concurrent
// workers — the serialization the sharding exists to remove. The
// sharded/memory wall-clock ratio is the headline metric and also lands in
// the BENCH_fleet.json trajectory via BenchmarkFleetTrajectory.
//
// The ratio is only meaningful with real parallelism: on a single-CPU host
// the 8 workers serialize no matter how the locks are split, so the ratio
// degenerates to the shard-routing overhead (below 1.0). The cpus metric is
// reported alongside so a recorded ratio is always interpretable.
func BenchmarkStoreContention(b *testing.B) {
	const workers, ops = 8, 200_000
	var mem, shd float64
	for i := 0; i < b.N; i++ {
		mem = storeOpsPerSecond(store.NewMemory(store.Config{}), workers, ops)
		shd = storeOpsPerSecond(store.NewSharded(store.Config{}, 8), workers, ops)
	}
	fmt.Fprintf(os.Stderr, "\n===== %s =====\nmemory %.0f ops/s, sharded(8) %.0f ops/s, speedup %.2fx on %d CPUs\n",
		b.Name(), mem, shd, shd/mem, runtime.NumCPU())
	b.ReportMetric(mem/1e6, "memory-Mops/s")
	b.ReportMetric(shd/1e6, "sharded-Mops/s")
	b.ReportMetric(shd/mem, "shard-speedup")
	b.ReportMetric(float64(runtime.NumCPU()), "cpus")
}

// ---- helpers ------------------------------------------------------------

func mustOptimize(b *testing.B, m machine.Machine, bench, input string, cfg rpg2.Config) *rpgcore.Report {
	b.Helper()
	w, err := workloads.Build(bench, input, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := rpgcore.New(m, cfg).Optimize(p)
	if err != nil {
		b.Fatal(err)
	}
	return rep
}

func throughputWith(b *testing.B, m machine.Machine, input string, cfg *rpg2.Config) float64 {
	b.Helper()
	const seconds = 30.0
	w, err := workloads.Build("pr", input, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		b.Fatal(err)
	}
	watch := perf.AttachWatch(p, []int{w.WorkPC})
	if cfg != nil {
		if _, err := rpgcore.New(m, *cfg).Optimize(p); err != nil {
			b.Fatal(err)
		}
	}
	if budget := m.Seconds(seconds); p.Clock() < budget {
		p.Run(budget - p.Clock())
	}
	return float64(watch.Count)
}

func placementSpeedup(b *testing.B, m machine.Machine, inner bool) float64 {
	b.Helper()
	w, err := workloads.Build("bc", "synth-u1", 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	cand, err := baselines.ProfileCandidates(w, m, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	// Baseline.
	bp, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		b.Fatal(err)
	}
	if err := baselines.RunUntilInit(bp, m); err != nil {
		b.Fatal(err)
	}
	bw := perf.AttachWatch(bp, []int{w.WorkPC})
	bp.Run(m.Seconds(1.5))
	base := perf.MeasureWatch(bp, bw, m.Seconds(1.0), nil, 0)

	// Prefetched with the selected placement, at a good distance.
	rw, err := injectWithPlacement(w, cand, 12, inner)
	if err != nil {
		b.Fatal(err)
	}
	nb, err := rw.Apply(w.Bin)
	if err != nil {
		b.Fatal(err)
	}
	pp, err := m.Launch(nb, w.Setup)
	if err != nil {
		b.Fatal(err)
	}
	if err := baselines.RunUntilInit(pp, m); err != nil {
		b.Fatal(err)
	}
	f1, _ := nb.Func(rw.NewName)
	pcs := []int{w.WorkPC}
	if off, ok := rw.BAT.Translate(w.WorkPC); ok {
		pcs = append(pcs, f1.Entry+off)
	}
	pw := perf.AttachWatch(pp, pcs)
	pp.Run(m.Seconds(1.5))
	win := perf.MeasureWatch(pp, pw, m.Seconds(1.0), nil, 0)
	return win.Rate / base.Rate
}

// injectWithPlacement runs the pass with the placement option.
func injectWithPlacement(w *workloads.Workload, cand []int, d int, inner bool) (*bolt.Rewrite, error) {
	return bolt.InjectPrefetchWithOptions(w.Bin, workloads.KernelFunc, cand, d,
		bolt.Options{PreferInnerPlacement: inner})
}

// ---- performance trajectory (BENCH_*.json) ------------------------------

// benchJSON, when set (go test -bench=FleetTrajectory -args -benchjson=
// BENCH_fleet.json), appends this run's headline throughput numbers to a
// JSON trajectory file, so successive commits accumulate a comparable
// performance history. CI runs this as a non-gating step.
var benchJSON = flag.String("benchjson", "", "append FleetTrajectory metrics to this JSON file")

// trajectoryPoint is one commit's entry in the BENCH_*.json history.
type trajectoryPoint struct {
	Time              string  `json:"time"`
	Commit            string  `json:"commit,omitempty"`
	Sessions          int     `json:"sessions"`
	WallSeconds       float64 `json:"wall_seconds"`
	SessionsPerSecond float64 `json:"sessions_per_second"`
	Instructions      uint64  `json:"instructions"`
	NsPerInstruction  float64 `json:"ns_per_instruction"`
	// Store contention: the BenchmarkStoreContention mix at 8 workers, so
	// the sharded/memory ratio accumulates a history alongside throughput.
	// CPUs records the host's parallelism — on a single-CPU host the ratio
	// degenerates to routing overhead and must be read accordingly.
	StoreMemoryOps    float64 `json:"store_memory_ops_per_second,omitempty"`
	StoreShardedOps   float64 `json:"store_sharded_ops_per_second,omitempty"`
	StoreShardSpeedup float64 `json:"store_shard_speedup,omitempty"`
	CPUs              int     `json:"cpus,omitempty"`
	// Drift recovery latency: one bc-drift session under a 1s watchdog.
	// Detection windows (sampler windows from phase switch to firing) plus
	// re-tune probes is the lane's end-to-end recovery latency in windows —
	// the number the drift study gates on, tracked here per commit.
	DriftDetectWindows   float64 `json:"drift_detect_windows,omitempty"`
	DriftRetuneProbes    int     `json:"drift_retune_probes,omitempty"`
	DriftRecoveryWindows float64 `json:"drift_recovery_windows,omitempty"`
	DriftRetunes         int     `json:"drift_retunes,omitempty"`
}

// BenchmarkFleetTrajectory measures the two throughput numbers the
// trajectory tracks: raw interpreter speed (wall-clock ns per simulated
// instruction, the floor under everything else) and fleet throughput
// (sessions per wall-clock second through the full admission + profile +
// rewrite + tune pipeline, store amortisation included).
func BenchmarkFleetTrajectory(b *testing.B) {
	var pt trajectoryPoint
	for i := 0; i < b.N; i++ {
		pt = measureTrajectory(b)
	}
	b.ReportMetric(pt.SessionsPerSecond, "sessions/s")
	b.ReportMetric(pt.NsPerInstruction, "ns/instr")
	if *benchJSON == "" {
		return
	}
	var points []trajectoryPoint
	if data, err := os.ReadFile(*benchJSON); err == nil {
		json.Unmarshal(data, &points) // a damaged file restarts the history
	}
	points = append(points, pt)
	data, err := json.MarshalIndent(points, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\n===== %s =====\nappended point %d to %s: %.2f sessions/s, %.1f ns/instr\n",
		b.Name(), len(points), *benchJSON, pt.SessionsPerSecond, pt.NsPerInstruction)
}

func measureTrajectory(b *testing.B) trajectoryPoint {
	b.Helper()
	pt := trajectoryPoint{Time: time.Now().UTC().Format(time.RFC3339)}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		pt.Commit = sha
	}

	// Interpreter floor: run one workload flat out and clock it.
	m := machine.CascadeLake()
	w, err := workloads.Build("is", "", 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	p, err := m.Launch(w.Bin, w.Setup)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	p.Run(m.Seconds(2))
	elapsed := time.Since(start)
	pt.Instructions = p.Counters().Instructions
	if pt.Instructions > 0 {
		pt.NsPerInstruction = float64(elapsed.Nanoseconds()) / float64(pt.Instructions)
	}

	// Fleet throughput: a mixed batch through the whole pipeline.
	pairs := []rpg2.SessionSpec{
		{Bench: "is"}, {Bench: "cg"}, {Bench: "randacc"},
		{Bench: "bfs", Input: "soc-gamma"},
	}
	f := rpg2.NewFleet(rpg2.FleetConfig{Machine: m, Workers: 4})
	defer f.Close()
	const sessions = 16
	start = time.Now()
	for i := 0; i < sessions; i++ {
		spec := pairs[i%len(pairs)]
		spec.Seed = int64(i + 1)
		if _, err := f.Submit(spec); err != nil {
			b.Fatal(err)
		}
	}
	f.Drain()
	wall := time.Since(start).Seconds()
	pt.Sessions = sessions
	pt.WallSeconds = wall
	if wall > 0 {
		pt.SessionsPerSecond = float64(sessions) / wall
	}

	// Store contention floor, same mix as BenchmarkStoreContention.
	pt.CPUs = runtime.NumCPU()
	pt.StoreMemoryOps = storeOpsPerSecond(store.NewMemory(store.Config{}), 8, 200_000)
	pt.StoreShardedOps = storeOpsPerSecond(store.NewSharded(store.Config{}, 8), 8, 200_000)
	if pt.StoreMemoryOps > 0 {
		pt.StoreShardSpeedup = pt.StoreShardedOps / pt.StoreMemoryOps
	}

	// Drift recovery latency: one bc-drift session with the watchdog armed.
	// SeedDistance 2 lands the activation in the pre-switch regime so the
	// phase switch drifts it hard and the re-tune lane has real work to do.
	df := rpg2.NewFleet(rpg2.FleetConfig{Machine: m, Workers: 1, WatchdogInterval: 1})
	defer df.Close()
	s, err := df.Submit(rpg2.SessionSpec{
		Bench: "bc-drift", Seed: 1, Cold: true, RunSeconds: 30,
		Config: &rpgcore.Config{SeedDistance: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	df.Drain()
	snap := df.Snapshot()
	pt.DriftDetectWindows = snap.DetectWindowsMean
	pt.DriftRetunes = snap.RetunesCompleted
	if rep := s.Report(); rep != nil && snap.RetunesCompleted > 0 {
		pt.DriftRetuneProbes = rep.Costs.PDEdits
		pt.DriftRecoveryWindows = snap.DetectWindowsMean + float64(rep.Costs.PDEdits)
	}
	return pt
}
