package rpg2_test

import (
	"testing"

	"rpg2"
)

// optimizeOnce runs one full session from a fresh process.
func optimizeOnce(t *testing.T, bench, input string, seed int64) *rpg2.Report {
	t.Helper()
	m := rpg2.CascadeLake()
	w, err := rpg2.BuildWorkload(bench, input)
	if err != nil {
		t.Fatal(err)
	}
	p, err := rpg2.Launch(m, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rpg2.Optimize(m, p, rpg2.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestOptimizeDeterministic guards the fleet's reproducible-session claim:
// two sessions with the same Config.Seed, machine, and workload must make
// identical decisions — same outcome, same tuned distance, same search
// trajectory, same timeline length.
func TestOptimizeDeterministic(t *testing.T) {
	for _, tc := range []struct {
		bench, input string
		seed         int64
	}{
		{"pr", "soc-alpha", 7},
		{"is", "", 3},
	} {
		a := optimizeOnce(t, tc.bench, tc.input, tc.seed)
		b := optimizeOnce(t, tc.bench, tc.input, tc.seed)
		if a.Outcome != b.Outcome {
			t.Fatalf("%s/%s: outcomes %v vs %v", tc.bench, tc.input, a.Outcome, b.Outcome)
		}
		if a.FinalDistance != b.FinalDistance {
			t.Fatalf("%s/%s: final distances %d vs %d", tc.bench, tc.input, a.FinalDistance, b.FinalDistance)
		}
		if a.InitialDistance != b.InitialDistance {
			t.Fatalf("%s/%s: initial distances %d vs %d", tc.bench, tc.input, a.InitialDistance, b.InitialDistance)
		}
		if len(a.Timeline) != len(b.Timeline) {
			t.Fatalf("%s/%s: timeline lengths %d vs %d", tc.bench, tc.input, len(a.Timeline), len(b.Timeline))
		}
		if len(a.Explored) != len(b.Explored) {
			t.Fatalf("%s/%s: explored %v vs %v", tc.bench, tc.input, a.Explored, b.Explored)
		}
		for d, m := range a.Explored {
			if b.Explored[d] != m {
				t.Fatalf("%s/%s: explored[%d] = %v vs %v", tc.bench, tc.input, d, m, b.Explored[d])
			}
		}
	}
}

// TestOptimizeSeedSensitivity is the converse sanity check: different seeds
// start the search in different places, so the sessions are genuinely
// driven by Config.Seed rather than a hidden global.
func TestOptimizeSeedSensitivity(t *testing.T) {
	a := optimizeOnce(t, "is", "", 1)
	b := optimizeOnce(t, "is", "", 2)
	if a.InitialDistance == b.InitialDistance {
		t.Fatalf("seeds 1 and 2 both started at distance %d", a.InitialDistance)
	}
}
