package rpg2_test

import (
	"testing"

	"rpg2"
)

// TestPublicAPIRoundTrip drives the facade exactly as README's quickstart
// does: build, launch, optimize, keep running.
func TestPublicAPIRoundTrip(t *testing.T) {
	m := rpg2.CascadeLake()
	w, err := rpg2.BuildWorkload("pr", "soc-alpha")
	if err != nil {
		t.Fatal(err)
	}
	p, err := rpg2.Launch(m, w)
	if err != nil {
		t.Fatal(err)
	}
	counter := rpg2.WatchWork(p, w)
	rep, err := rpg2.Optimize(m, p, rpg2.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != rpg2.Tuned {
		t.Fatalf("outcome %v", rep.Outcome)
	}
	before := counter.Count
	p.Run(m.Seconds(2))
	if counter.Count == before {
		t.Fatal("no post-detach progress")
	}
}

func TestPublicCatalogues(t *testing.T) {
	if len(rpg2.Benchmarks()) != 7 {
		t.Fatalf("benchmarks = %v", rpg2.Benchmarks())
	}
	if len(rpg2.GraphInputs()) < 20 || len(rpg2.SyntheticInputs()) < 5 {
		t.Fatal("catalogues too small")
	}
	if _, ok := rpg2.MachineByName("haswell"); !ok {
		t.Fatal("haswell missing")
	}
	if len(rpg2.Machines()) != 2 {
		t.Fatal("want two machines")
	}
	if _, err := rpg2.BuildWorkload("nope", ""); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}

func TestPublicSweep(t *testing.T) {
	m := rpg2.Haswell()
	cfg := rpg2.DefaultSweep()
	cfg.Distances = []int{2, 8, 32}
	sw, err := rpg2.RunSweep("is", "", m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, s := sw.Best()
	if d == 0 || s <= 0 {
		t.Fatalf("Best = %d, %f", d, s)
	}
	if len(sw.Speedup) != 3 {
		t.Fatalf("speedups = %v", sw.Speedup)
	}
}
