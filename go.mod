module rpg2

go 1.22
